package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"fastflex/internal/core"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
)

// Reset-vs-fresh byte identity: the warm-fabric reuse layer's entire
// contract is that running a reset fabric is indistinguishable — to the
// last float64 bit — from running a freshly built one at the same seed.
// These tests pin that against the SAME golden files the cold path is
// pinned to (fig3_golden.json, fig3_sharded_golden.json): a warm run must
// reproduce bytes that were recorded before the reset layer existed.

// warmFig3 runs the golden Figure-3 configuration at seed through a
// fabric source (nil = cold).
func warmFig3(seed int64, shards int, fabrics FabricSource) *Figure3Result {
	return Figure3(Figure3Config{
		Defense:     DefenseFastFlex,
		Duration:    14 * time.Second,
		AttackStart: 7 * time.Second,
		Seed:        seed,
		Shards:      shards,
		Fabrics:     fabrics,
	})
}

// TestFigure3ResetVsFreshIdentical pins the serial engine's reset
// contract: a run on a fabric that already carried a different seed's run
// must be byte-identical to the recorded fresh-build golden.
func TestFigure3ResetVsFreshIdentical(t *testing.T) {
	var want fig3Golden
	readGolden(t, "fig3_golden.json", &want)

	cache := NewFabricCache(0)
	warmFig3(3, 0, cache) // populate: cold build at a decoy seed
	if cache.Misses != 1 {
		t.Fatalf("first run should miss the cache, misses = %d", cache.Misses)
	}
	got := fig3GoldenOf(warmFig3(7, 0, cache))
	if cache.Hits != 1 {
		t.Fatalf("second run should reuse the warm fabric, hits = %d", cache.Hits)
	}
	compareFig3Golden(t, got, want)
}

// TestFigure3TripleReuseGolden pins run→reset→run→reset→run at three
// distinct seeds on one fabric against its own golden: every leg of a
// long reuse chain must match a fresh build at that leg's seed, so state
// cannot accumulate across any number of resets.
func TestFigure3TripleReuseGolden(t *testing.T) {
	type tripleGolden struct {
		Seeds []int64      `json:"seeds"`
		Runs  []fig3Golden `json:"runs"`
	}
	seeds := []int64{7, 13, 21}

	if *updateGolden {
		// Record from FRESH builds: the golden is reset-vs-fresh by
		// construction, not reset-vs-first-reset.
		g := tripleGolden{Seeds: seeds}
		for _, s := range seeds {
			g.Runs = append(g.Runs, fig3GoldenOf(warmFig3(s, 0, nil)))
		}
		writeGolden(t, "fig3_reset_triple_golden.json", g)
		return
	}
	var want tripleGolden
	readGolden(t, "fig3_reset_triple_golden.json", &want)

	cache := NewFabricCache(0)
	for i, s := range seeds {
		got := fig3GoldenOf(warmFig3(s, 0, cache))
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			compareFig3Golden(t, got, want.Runs[i])
		})
	}
	if cache.Hits != uint64(len(seeds)-1) {
		t.Errorf("reuse chain hits = %d, want %d", cache.Hits, len(seeds)-1)
	}
}

// TestFigure3ResetShardedGoldenIdentical pins the windowed engine's reset
// contract across the same grid the fresh-build golden is pinned on:
// shard counts {1,2,4} × GOMAXPROCS {1,4}, every cell a warm re-run that
// must reproduce fig3_sharded_golden.json exactly. Shard engines, SPSC
// rings, per-entity RNG streams, and rank owners all rewind under reset.
func TestFigure3ResetShardedGoldenIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want fig3Golden
	readGolden(t, "fig3_sharded_golden.json", &want)
	for _, procs := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("procs=%d/shards=%d", procs, shards), func(t *testing.T) {
				if testing.Short() && (procs != 4 || shards == 2) {
					t.Skip("short mode runs the widest configuration only")
				}
				runtime.GOMAXPROCS(procs)
				cache := NewFabricCache(0)
				warmFig3(3, shards, cache)
				got := fig3GoldenOf(warmFig3(7, shards, cache))
				if cache.Hits != 1 {
					t.Fatalf("second run should reuse the warm fabric, hits = %d", cache.Hits)
				}
				compareFig3Golden(t, got, want)
			})
		}
	}
}

// TestFigure3fResetVsFreshIdentical pins reset byte-identity with the
// hybrid fluid substrate on: a planet-scale run (fluid background flows,
// byte ledger, modeled-host accounting) on a twice-reset fabric must
// equal a fresh build — rendered text, metrics, and workload counters.
func TestFigure3fResetVsFreshIdentical(t *testing.T) {
	cfg := Figure3fConfig{
		HostsPerFlow: 250,
		Duration:     20 * time.Second,
		AttackStart:  8 * time.Second,
	}
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if testing.Short() && shards != 0 {
				t.Skip("short mode runs the serial engine only")
			}
			c := cfg
			c.Shards = shards

			c.Seed = 9
			fresh := Figure3f(c)

			cache := NewFabricCache(0)
			c.Fabrics = cache
			c.Seed = 5
			Figure3f(c) // populate both arms' fabrics at a decoy seed
			c.Seed = 9
			warm := Figure3f(c)
			if cache.Hits != 2 {
				t.Fatalf("warm comparison should reuse both arms' fabrics, hits = %d", cache.Hits)
			}

			if got, want := warm.String(), fresh.String(); got != want {
				t.Errorf("rendered result diverged:\nwarm:\n%s\nfresh:\n%s", got, want)
			}
			if warm.Events != fresh.Events || warm.Packets != fresh.Packets {
				t.Errorf("workload (%d ev, %d pkt) warm vs (%d ev, %d pkt) fresh",
					warm.Events, warm.Packets, fresh.Events, fresh.Packets)
			}
			if len(warm.Metrics) != len(fresh.Metrics) {
				t.Errorf("metric count %d warm vs %d fresh", len(warm.Metrics), len(fresh.Metrics))
			}
			for name, w := range fresh.Metrics {
				if g, ok := warm.Metrics[name]; !ok || g != w {
					t.Errorf("metric %q = %v warm, %v fresh", name, warm.Metrics[name], w)
				}
			}
		})
	}
}

// TestFabricResetAllocs asserts the reset path does no per-node rebuild:
// rewinding a built fabric allocates a small bounded amount (route
// reinstall path scratch), orders of magnitude under construction, and
// independent of how much traffic the previous run carried.
func TestFabricResetAllocs(t *testing.T) {
	cfg := Figure3Config{Defense: DefenseFastFlex}
	cfg.fillDefaults()
	bt := BuildFig3Topology(cfg)
	var coreCfg core.Config
	for _, s := range bt.Servers {
		coreCfg.Protected = append(coreCfg.Protected, packet.HostAddr(int(s)))
	}
	coreCfg.Net = netsim.DefaultConfig()
	coreCfg.Net.Seed = 7
	fab, err := core.New(bt.G, coreCfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := fab.Reset(7); err != nil {
			t.Fatalf("Reset: %v", err)
		}
	})
	// Routes reinstall via shortest-path scratch; everything else clears
	// in place. The figure-2 fabric builds with ~hundreds of thousands of
	// allocations — a reset must stay in the low thousands.
	if allocs > 5000 {
		t.Errorf("Fabric.Reset allocates %.0f objects per call; reset must rewind in place", allocs)
	}
}
