package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// runGoldenFig3Variant is runGoldenFig3/runGoldenFig3Sharded with the perf
// knobs exposed: the same short FastFlex run with batching and/or the
// adaptive lookahead switched off.
func runGoldenFig3Variant(shards int, disableBatch, staticLookahead bool) *Figure3Result {
	return Figure3(Figure3Config{
		Defense:         DefenseFastFlex,
		Duration:        14 * time.Second,
		AttackStart:     7 * time.Second,
		Seed:            7,
		Shards:          shards,
		DisableBatch:    disableBatch,
		StaticLookahead: staticLookahead,
	})
}

// TestFigure3BatchingGoldenIdentical pins the PR's central invariant: the
// batched pipeline and the adaptive shard lookahead are pure performance
// features. Turning either (or both) off must reproduce the committed
// golden bytes exactly — same float64 bit patterns, same attacker rolls —
// for the serial engine and for every shard count, under a single-threaded
// and a parallel scheduler. The golden files are the ones the default
// (batched, adaptive) configuration is already pinned to, so this test
// transitively proves batched == unbatched and adaptive == static.
func TestFigure3BatchingGoldenIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var serial, sharded fig3Golden
	readGolden(t, "fig3_golden.json", &serial)
	readGolden(t, "fig3_sharded_golden.json", &sharded)

	type variant struct {
		disableBatch, staticLookahead bool
		name                          string
	}
	for _, procs := range []int{1, 4} {
		for _, shards := range []int{0, 1, 2, 4} {
			variants := []variant{{true, false, "unbatched"}}
			if shards >= 2 {
				// Static lookahead only means something when cut links
				// exist; add the combined variant to catch interactions.
				variants = append(variants,
					variant{false, true, "static"},
					variant{true, true, "unbatched+static"})
			}
			for _, v := range variants {
				procs, shards, v := procs, shards, v
				t.Run(fmt.Sprintf("procs=%d/shards=%d/%s", procs, shards, v.name), func(t *testing.T) {
					if testing.Short() && (procs != 4 || shards == 1 || shards == 2) {
						t.Skip("short mode runs the widest configurations only")
					}
					want := sharded
					if shards == 0 {
						want = serial
					}
					runtime.GOMAXPROCS(procs)
					got := fig3GoldenOf(runGoldenFig3Variant(shards, v.disableBatch, v.staticLookahead))
					compareFig3Golden(t, got, want)
				})
			}
		}
	}
}
