package packet

import (
	"encoding/binary"
	"fmt"
)

// ProbeKind discriminates the FastFlex probe header's purpose.
type ProbeKind uint8

// Probe kinds. They map one-to-one onto the distributed-control mechanisms
// of §3.3–3.4: mode-change alarms, Hula-style utilization probes, detector
// view synchronization, and piggybacked state transfer.
const (
	// ProbeModeChange carries an attack alarm that activates (or, with
	// Clear set, deactivates) a defense mode in a region.
	ProbeModeChange ProbeKind = iota + 1
	// ProbeUtil carries best-path utilization toward a destination switch,
	// as in Hula/Contra.
	ProbeUtil
	// ProbeSync carries a detector's local view for distributed detection
	// (network-wide heavy hitters, global rate limits).
	ProbeSync
	// ProbeState carries a chunk of register state being transferred off a
	// switch that is about to be repurposed, possibly with FEC parity.
	ProbeState
)

func (k ProbeKind) String() string {
	switch k {
	case ProbeModeChange:
		return "mode-change"
	case ProbeUtil:
		return "util"
	case ProbeSync:
		return "sync"
	case ProbeState:
		return "state"
	}
	return fmt.Sprintf("probe-kind-%d", uint8(k))
}

// ProbeInfo is the FastFlex probe header.
type ProbeInfo struct {
	Kind ProbeKind

	// Origin is the router address of the switch that emitted the probe.
	Origin Addr
	// Seq is a per-origin sequence number used for duplicate suppression
	// during flood propagation.
	Seq uint32
	// HopsLeft bounds flooding scope; decremented per switch hop.
	HopsLeft uint8

	// Mode-change fields: the mode being activated, the region it applies
	// to, and whether this is an activation or a clear.
	Mode   uint8
	Region uint16
	Clear  bool

	// Util fields: utilization (micro-units, 1e6 = 100%) of the best path
	// from the receiving switch via Origin toward DstSwitch.
	UtilMicro uint32
	DstSwitch uint16

	// Sync fields reuse UtilMicro as the metric value and Mode as the
	// metric ID; SyncCount carries the sample count.
	SyncCount uint32

	// State-transfer fields: chunked register state with optional XOR
	// parity for FEC (§3.4).
	StateID   uint16 // transfer session
	ChunkIdx  uint16
	ChunkCnt  uint16
	FECParity bool
	State     []byte
}

// Fixed-section layout (probeFixedLen = 23 bytes, see packet.go):
// kind(1) origin(4) seq(4) hops(1) mode(1) region(2) flags(1) util(4)
// dstsw(2) kind-specific(3). Bytes 20–22 are kind-specific: ProbeSync packs
// a 24-bit sample count; ProbeState packs session/chunk-index/chunk-count.
func (pi *ProbeInfo) marshal() ([]byte, error) {
	if len(pi.State) > maxStateLen {
		return nil, fmt.Errorf("packet: state chunk %d exceeds max %d", len(pi.State), maxStateLen)
	}
	buf := make([]byte, probeFixedLen, probeFixedLen+len(pi.State))
	buf[0] = byte(pi.Kind)
	binary.BigEndian.PutUint32(buf[1:5], uint32(pi.Origin))
	binary.BigEndian.PutUint32(buf[5:9], pi.Seq)
	buf[9] = pi.HopsLeft
	buf[10] = pi.Mode
	binary.BigEndian.PutUint16(buf[11:13], pi.Region)
	var flags byte
	if pi.Clear {
		flags |= 1
	}
	if pi.FECParity {
		flags |= 2
	}
	buf[13] = flags
	binary.BigEndian.PutUint32(buf[14:18], pi.UtilMicro)
	binary.BigEndian.PutUint16(buf[18:20], pi.DstSwitch)
	switch pi.Kind {
	case ProbeSync:
		if pi.SyncCount > 0xFFFFFF {
			return nil, fmt.Errorf("packet: sync count %d exceeds 24 bits", pi.SyncCount)
		}
		buf[20] = byte(pi.SyncCount >> 16)
		binary.BigEndian.PutUint16(buf[21:23], uint16(pi.SyncCount))
	case ProbeState:
		if pi.StateID > 0xFF || pi.ChunkIdx > 0xFF || pi.ChunkCnt > 0xFF {
			return nil, fmt.Errorf("packet: state chunk fields exceed 8 bits: id=%d idx=%d cnt=%d",
				pi.StateID, pi.ChunkIdx, pi.ChunkCnt)
		}
		buf[20] = byte(pi.StateID)
		buf[21] = byte(pi.ChunkIdx)
		buf[22] = byte(pi.ChunkCnt)
	}
	return append(buf, pi.State...), nil
}

func (pi *ProbeInfo) unmarshal(data []byte) error {
	if len(data) < probeFixedLen {
		return fmt.Errorf("packet: short probe header: %d bytes", len(data))
	}
	*pi = ProbeInfo{
		Kind:      ProbeKind(data[0]),
		Origin:    Addr(binary.BigEndian.Uint32(data[1:5])),
		Seq:       binary.BigEndian.Uint32(data[5:9]),
		HopsLeft:  data[9],
		Mode:      data[10],
		Region:    binary.BigEndian.Uint16(data[11:13]),
		Clear:     data[13]&1 != 0,
		FECParity: data[13]&2 != 0,
		UtilMicro: binary.BigEndian.Uint32(data[14:18]),
		DstSwitch: binary.BigEndian.Uint16(data[18:20]),
	}
	switch pi.Kind {
	case ProbeSync:
		pi.SyncCount = uint32(data[20])<<16 | uint32(binary.BigEndian.Uint16(data[21:23]))
	case ProbeState:
		pi.StateID = uint16(data[20])
		pi.ChunkIdx = uint16(data[21])
		pi.ChunkCnt = uint16(data[22])
	}
	if len(data) > probeFixedLen {
		pi.State = append([]byte(nil), data[probeFixedLen:]...)
	}
	return nil
}

func (pi *ProbeInfo) clone() *ProbeInfo {
	q := *pi
	if pi.State != nil {
		q.State = append([]byte(nil), pi.State...)
	}
	return &q
}

// DedupKey identifies a probe origin+sequence pair for flood duplicate
// suppression.
type DedupKey struct {
	Origin Addr
	Seq    uint32
	Kind   ProbeKind
}

// Dedup returns the probe's duplicate-suppression key.
func (pi *ProbeInfo) Dedup() DedupKey {
	return DedupKey{Origin: pi.Origin, Seq: pi.Seq, Kind: pi.Kind}
}

func (pi *ProbeInfo) String() string {
	switch pi.Kind {
	case ProbeModeChange:
		verb := "set"
		if pi.Clear {
			verb = "clear"
		}
		return fmt.Sprintf("probe[%s mode=%d region=%d origin=%v seq=%d hops=%d]",
			verb, pi.Mode, pi.Region, pi.Origin, pi.Seq, pi.HopsLeft)
	case ProbeUtil:
		return fmt.Sprintf("probe[util dst=sw%d u=%.3f origin=%v]",
			pi.DstSwitch, float64(pi.UtilMicro)/1e6, pi.Origin)
	case ProbeSync:
		return fmt.Sprintf("probe[sync metric=%d val=%d n=%d origin=%v]",
			pi.Mode, pi.UtilMicro, pi.SyncCount, pi.Origin)
	case ProbeState:
		return fmt.Sprintf("probe[state id=%d chunk=%d/%d parity=%v len=%d]",
			pi.StateID, pi.ChunkIdx, pi.ChunkCnt, pi.FECParity, len(pi.State))
	}
	return fmt.Sprintf("probe[kind=%d]", pi.Kind)
}
