package packet

import (
	"encoding/binary"
	"fmt"
)

// Decoder decodes packets into preallocated storage, following the
// gopacket DecodingLayerParser idiom: the caller owns one Decoder per
// processing context and reuses it for every packet, so steady-state
// decoding performs no heap allocation (Packet.Unmarshal, by contrast,
// allocates fresh ICMP/Probe layers per packet).
//
// The decoded packet aliases the Decoder's internal storage: it is valid
// only until the next DecodeInto call.
type Decoder struct {
	pkt   Packet
	icmp  ICMPInfo
	probe ProbeInfo
	state []byte
}

// DecodeInto decodes one packet from data, returning a pointer into the
// decoder's reusable storage and the number of bytes consumed.
func (d *Decoder) DecodeInto(data []byte) (*Packet, int, error) {
	if len(data) < baseHeaderLen {
		return nil, 0, fmt.Errorf("packet: short header: %d bytes", len(data))
	}
	d.pkt = Packet{
		Src:        Addr(binary.BigEndian.Uint32(data[0:4])),
		Dst:        Addr(binary.BigEndian.Uint32(data[4:8])),
		TTL:        data[8],
		Proto:      Proto(data[9]),
		Suspicion:  data[10],
		Hops:       data[11],
		PayloadLen: binary.BigEndian.Uint16(data[12:14]),
	}
	l4len := int(binary.BigEndian.Uint16(data[14:16]))
	rest := data[baseHeaderLen:]
	if len(rest) < l4len {
		return nil, 0, fmt.Errorf("packet: short L4: have %d, want %d", len(rest), l4len)
	}
	l4 := rest[:l4len]
	switch d.pkt.Proto {
	case ProtoTCP, ProtoUDP:
		if l4len != transportLen {
			return nil, 0, fmt.Errorf("packet: bad transport length %d", l4len)
		}
		d.pkt.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		d.pkt.DstPort = binary.BigEndian.Uint16(l4[2:4])
		d.pkt.Flags = TCPFlags(l4[4])
		d.pkt.Seq = binary.BigEndian.Uint32(l4[5:9])
	case ProtoICMP:
		if l4len != icmpLen {
			return nil, 0, fmt.Errorf("packet: bad ICMP length %d", l4len)
		}
		d.icmp = ICMPInfo{
			Type:    ICMPType(l4[0]),
			From:    Addr(binary.BigEndian.Uint32(l4[1:5])),
			OrigSeq: binary.BigEndian.Uint32(l4[5:9]),
			OrigTTL: l4[9],
		}
		d.pkt.ICMP = &d.icmp
	case ProtoProbe:
		if err := d.decodeProbe(l4); err != nil {
			return nil, 0, err
		}
		d.pkt.Probe = &d.probe
	default:
		return nil, 0, fmt.Errorf("packet: cannot decode protocol %d", data[9])
	}
	return &d.pkt, baseHeaderLen + l4len, nil
}

// decodeProbe mirrors ProbeInfo.unmarshal but reuses the decoder's state
// buffer instead of allocating.
func (d *Decoder) decodeProbe(data []byte) error {
	if len(data) < probeFixedLen {
		return fmt.Errorf("packet: short probe header: %d bytes", len(data))
	}
	d.probe = ProbeInfo{
		Kind:      ProbeKind(data[0]),
		Origin:    Addr(binary.BigEndian.Uint32(data[1:5])),
		Seq:       binary.BigEndian.Uint32(data[5:9]),
		HopsLeft:  data[9],
		Mode:      data[10],
		Region:    binary.BigEndian.Uint16(data[11:13]),
		Clear:     data[13]&1 != 0,
		FECParity: data[13]&2 != 0,
		UtilMicro: binary.BigEndian.Uint32(data[14:18]),
		DstSwitch: binary.BigEndian.Uint16(data[18:20]),
	}
	switch d.probe.Kind {
	case ProbeSync:
		d.probe.SyncCount = uint32(data[20])<<16 | uint32(binary.BigEndian.Uint16(data[21:23]))
	case ProbeState:
		d.probe.StateID = uint16(data[20])
		d.probe.ChunkIdx = uint16(data[21])
		d.probe.ChunkCnt = uint16(data[22])
	}
	if len(data) > probeFixedLen {
		d.state = append(d.state[:0], data[probeFixedLen:]...)
		d.probe.State = d.state
	}
	return nil
}
