package packet

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddrPrefixes(t *testing.T) {
	h := HostAddr(5)
	r := RouterAddr(5)
	if h == r {
		t.Fatal("host and router addresses collide")
	}
	if h.Node() != 5 || r.Node() != 5 {
		t.Fatalf("node recovery: host=%d router=%d, want 5", h.Node(), r.Node())
	}
	if h.IsRouter() {
		t.Fatal("host address reports IsRouter")
	}
	if !r.IsRouter() {
		t.Fatal("router address does not report IsRouter")
	}
	if Addr(0).Node() != -1 {
		t.Fatal("zero address should not map to a node")
	}
}

func TestAddrString(t *testing.T) {
	if got := HostAddr(0).String(); got != "10.0.0.1" {
		t.Fatalf("HostAddr(0) = %s, want 10.0.0.1", got)
	}
	if got := RouterAddr(1).String(); got != "192.168.0.2" {
		t.Fatalf("RouterAddr(1) = %s, want 192.168.0.2", got)
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if len(wire)+int(p.PayloadLen) != p.Len() {
		t.Fatalf("wire %d + payload %d != Len %d", len(wire), p.PayloadLen, p.Len())
	}
	var q Packet
	n, err := q.Unmarshal(wire)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	return &q
}

func TestRoundTripTCP(t *testing.T) {
	p := &Packet{
		Src: HostAddr(1), Dst: HostAddr(2), TTL: 64, Proto: ProtoTCP,
		SrcPort: 4444, DstPort: 80, Flags: FlagSYN | FlagACK, Seq: 123456,
		PayloadLen: 1400, Suspicion: 2,
	}
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripICMP(t *testing.T) {
	p := &Packet{
		Src: RouterAddr(3), Dst: HostAddr(1), TTL: 64, Proto: ProtoICMP,
		ICMP: &ICMPInfo{Type: ICMPTimeExceeded, From: RouterAddr(3), OrigSeq: 99, OrigTTL: 2},
	}
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripProbeKinds(t *testing.T) {
	probes := []*ProbeInfo{
		{Kind: ProbeModeChange, Origin: RouterAddr(1), Seq: 7, HopsLeft: 5, Mode: 3, Region: 2},
		{Kind: ProbeModeChange, Origin: RouterAddr(1), Seq: 8, HopsLeft: 5, Mode: 3, Region: 2, Clear: true},
		{Kind: ProbeUtil, Origin: RouterAddr(4), Seq: 100, HopsLeft: 1, UtilMicro: 734000, DstSwitch: 6},
		{Kind: ProbeSync, Origin: RouterAddr(2), Seq: 5, HopsLeft: 8, Mode: 1, UtilMicro: 42, SyncCount: 0xABCDEF},
		{Kind: ProbeState, Origin: RouterAddr(9), Seq: 1, StateID: 3, ChunkIdx: 2, ChunkCnt: 5,
			FECParity: true, State: []byte{1, 2, 3, 4, 5}},
	}
	for _, pi := range probes {
		p := &Packet{Src: RouterAddr(1), Dst: RouterAddr(2), TTL: 32, Proto: ProtoProbe, Probe: pi}
		q := roundTrip(t, p)
		if !reflect.DeepEqual(p, q) {
			t.Errorf("probe %v round trip mismatch:\n got %+v\nwant %+v", pi.Kind, q.Probe, p.Probe)
		}
	}
}

func TestMarshalErrors(t *testing.T) {
	cases := []*Packet{
		{Proto: ProtoICMP},  // missing ICMP layer
		{Proto: ProtoProbe}, // missing probe layer
		{Proto: Proto(99)},  // unknown protocol
		{Proto: ProtoProbe, Probe: &ProbeInfo{Kind: ProbeState, State: make([]byte, maxStateLen+1)}},
		{Proto: ProtoProbe, Probe: &ProbeInfo{Kind: ProbeState, StateID: 300}},
		{Proto: ProtoProbe, Probe: &ProbeInfo{Kind: ProbeSync, SyncCount: 1 << 24}},
	}
	for i, p := range cases {
		if _, err := p.Marshal(nil); err == nil {
			t.Errorf("case %d: expected marshal error", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if _, err := p.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
	good, _ := (&Packet{Src: 1, Dst: 2, Proto: ProtoTCP}).Marshal(nil)
	if _, err := p.Unmarshal(good[:len(good)-2]); err == nil {
		t.Error("truncated L4 accepted")
	}
	bad := append([]byte(nil), good...)
	bad[9] = 99 // unknown protocol
	if _, err := p.Unmarshal(bad); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFlowKey(t *testing.T) {
	p := &Packet{Src: HostAddr(1), Dst: HostAddr(2), Proto: ProtoTCP, SrcPort: 1000, DstPort: 80}
	k := p.Key()
	if k.Src() != p.Src || k.Dst() != p.Dst {
		t.Fatal("key does not encode addresses")
	}
	r := k.Reverse()
	if r.Src() != p.Dst || r.Dst() != p.Src {
		t.Fatal("reverse key wrong")
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
	p2 := &Packet{Src: HostAddr(1), Dst: HostAddr(2), Proto: ProtoTCP, SrcPort: 1000, DstPort: 81}
	if p2.Key() == k {
		t.Fatal("different ports produced equal keys")
	}
}

func TestFlowKeyHashSpread(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		p := &Packet{Src: HostAddr(i % 10), Dst: HostAddr(5), Proto: ProtoTCP,
			SrcPort: uint16(1000 + i), DstPort: 80}
		seen[p.Key().Hash()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("hash collisions too common: %d distinct of 1000", len(seen))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{Proto: ProtoProbe, Probe: &ProbeInfo{Kind: ProbeState, State: []byte{1, 2}}}
	q := p.Clone()
	q.Probe.State[0] = 9
	q.Probe.Seq = 42
	if p.Probe.State[0] == 9 || p.Probe.Seq == 42 {
		t.Fatal("clone aliases probe layer")
	}
	p2 := &Packet{Proto: ProtoICMP, ICMP: &ICMPInfo{Type: ICMPEchoReply}}
	q2 := p2.Clone()
	q2.ICMP.Type = ICMPTimeExceeded
	if p2.ICMP.Type == ICMPTimeExceeded {
		t.Fatal("clone aliases ICMP layer")
	}
}

func TestDedupKey(t *testing.T) {
	a := &ProbeInfo{Kind: ProbeModeChange, Origin: RouterAddr(1), Seq: 5}
	b := &ProbeInfo{Kind: ProbeModeChange, Origin: RouterAddr(1), Seq: 5, HopsLeft: 3}
	if a.Dedup() != b.Dedup() {
		t.Fatal("dedup key should ignore HopsLeft")
	}
	c := &ProbeInfo{Kind: ProbeUtil, Origin: RouterAddr(1), Seq: 5}
	if a.Dedup() == c.Dedup() {
		t.Fatal("dedup key should distinguish kinds")
	}
}

// Property: TCP/UDP packets survive a marshal/unmarshal round trip for
// arbitrary field values.
func TestQuickRoundTripTransport(t *testing.T) {
	f := func(src, dst uint32, ttl uint8, udp bool, sport, dport uint16, flags uint8, seq uint32, plen uint16, susp uint8) bool {
		proto := ProtoTCP
		if udp {
			proto = ProtoUDP
		}
		p := &Packet{Src: Addr(src), Dst: Addr(dst), TTL: ttl, Proto: proto,
			SrcPort: sport, DstPort: dport, Flags: TCPFlags(flags & 0x0F), Seq: seq,
			PayloadLen: plen, Suspicion: susp}
		wire, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		var q Packet
		if _, err := q.Unmarshal(wire); err != nil {
			return false
		}
		return reflect.DeepEqual(p, &q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flow key reversal is an involution and preserves the proto byte.
func TestQuickFlowKeyReverse(t *testing.T) {
	f := func(src, dst uint32, proto uint8, sport, dport uint16) bool {
		p := &Packet{Src: Addr(src), Dst: Addr(dst), Proto: Proto(proto), SrcPort: sport, DstPort: dport}
		k := p.Key()
		return k.Reverse().Reverse() == k && k.Reverse()[8] == k[8]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLenAccounting(t *testing.T) {
	tcp := &Packet{Proto: ProtoTCP, PayloadLen: 1000}
	if tcp.Len() != baseHeaderLen+transportLen+1000 {
		t.Fatalf("TCP len = %d", tcp.Len())
	}
	pr := &Packet{Proto: ProtoProbe, Probe: &ProbeInfo{Kind: ProbeState, State: make([]byte, 64)}}
	if pr.Len() != baseHeaderLen+probeFixedLen+64 {
		t.Fatalf("probe len = %d", pr.Len())
	}
}
