// Package packet defines the wire format used by the simulated network:
// an IPv4-like header, TCP/UDP/ICMP layers, and the FastFlex probe header
// that carries mode changes, path-utilization samples, detector
// synchronization, and piggybacked state transfers.
//
// Layer (DESIGN.md §2): substrate, imports no other internal package.
// Everything above — sketch, dataplane, netsim, the boosters — speaks in
// these types.
//
// Determinism contract: the package is pure data plus pure functions of
// that data; nothing here reads a clock or randomness. Following the
// gopacket idioms from the networking guides, decoding writes into
// caller-owned structs without allocation on the hot path, FlowKey is a
// fixed-size array so it can be used directly as a map key, and Pool
// recycles data packets deterministically (a per-Network LIFO free list,
// not a sync.Pool) so forwarding allocates nothing in steady state.
package packet
