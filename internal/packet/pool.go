package packet

// Pool is a free list of Packets for the simulator hot path. A simulation
// allocates every data packet from its Network's pool and returns it at
// end-of-life (delivered to a host, or dropped), so steady-state forwarding
// performs no allocations (pinned by netsim's TestForwardSteadyStateZeroAlloc).
//
// The pool is deliberately not a sync.Pool: simulations are single-threaded
// below the experiment.Runner boundary, and a plain LIFO free list keeps
// reuse order — and therefore memory behavior — deterministic for a given
// seed. Each Network owns its own Pool, so concurrent runs never share one.
//
// Packets carrying an ICMP or Probe layer are never recycled: PPMs may
// legitimately retain those layer structs past the packet's lifetime (the
// state-transfer reassembler keeps ProbeInfo chunks, ICMP handlers may
// stash responses), so Put lets the garbage collector have them.
type Pool struct {
	free []*Packet

	// Gets counts allocations served; News counts the subset that had to
	// allocate fresh Packets (steady state: News stops growing).
	Gets, News uint64
}

// Get returns a zeroed Packet, reusing a recycled one when possible.
func (p *Pool) Get() *Packet {
	p.Gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return pkt
	}
	p.News++
	return &Packet{}
}

// Put recycles a packet the caller owns and will never touch again.
// Packets with ICMP or Probe layers are ignored (see the type comment).
func (p *Pool) Put(pkt *Packet) {
	if pkt == nil || pkt.ICMP != nil || pkt.Probe != nil {
		return
	}
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}
