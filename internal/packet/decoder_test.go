package packet

import (
	"reflect"
	"testing"
)

func decoderCases() []*Packet {
	return []*Packet{
		{Src: HostAddr(1), Dst: HostAddr(2), TTL: 64, Proto: ProtoTCP,
			SrcPort: 4444, DstPort: 80, Flags: FlagSYN, Seq: 9, PayloadLen: 1200,
			Suspicion: 1, Hops: 3},
		{Src: RouterAddr(3), Dst: HostAddr(1), TTL: 60, Proto: ProtoICMP,
			ICMP: &ICMPInfo{Type: ICMPTimeExceeded, From: RouterAddr(3), OrigSeq: 7, OrigTTL: 1}},
		{Src: RouterAddr(1), Dst: RouterAddr(2), TTL: 32, Proto: ProtoProbe,
			Probe: &ProbeInfo{Kind: ProbeState, Origin: RouterAddr(1), Seq: 3,
				StateID: 2, ChunkIdx: 1, ChunkCnt: 4, State: []byte{9, 8, 7}}},
		{Src: RouterAddr(4), Dst: RouterAddr(5), TTL: 16, Proto: ProtoProbe,
			Probe: &ProbeInfo{Kind: ProbeSync, Origin: RouterAddr(4), Seq: 11,
				Mode: 7, UtilMicro: 99, SyncCount: 12345}},
	}
}

func TestDecoderMatchesUnmarshal(t *testing.T) {
	var d Decoder
	for _, p := range decoderCases() {
		wire, err := p.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		var ref Packet
		refN, err := ref.Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := d.DecodeInto(wire)
		if err != nil {
			t.Fatalf("decode %v: %v", p.Proto, err)
		}
		if n != refN {
			t.Fatalf("consumed %d, unmarshal consumed %d", n, refN)
		}
		if !reflect.DeepEqual(got, &ref) {
			t.Fatalf("decoder mismatch for %v:\n got %+v\nwant %+v", p.Proto, got, &ref)
		}
	}
}

func TestDecoderReuseInvalidatesPrevious(t *testing.T) {
	var d Decoder
	cases := decoderCases()
	w1, _ := cases[0].Marshal(nil)
	w2, _ := cases[1].Marshal(nil)
	p1, _, _ := d.DecodeInto(w1)
	src1 := p1.Src
	p2, _, _ := d.DecodeInto(w2)
	if p1 != p2 {
		t.Fatal("decoder did not reuse storage")
	}
	if p1.Src == src1 {
		t.Fatal("storage not overwritten by second decode")
	}
}

func TestDecoderErrors(t *testing.T) {
	var d Decoder
	if _, _, err := d.DecodeInto([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
	good, _ := decoderCases()[0].Marshal(nil)
	if _, _, err := d.DecodeInto(good[:len(good)-1]); err == nil {
		t.Fatal("truncated L4 accepted")
	}
	bad := append([]byte(nil), good...)
	bad[9] = 99
	if _, _, err := d.DecodeInto(bad); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// The whole point of the Decoder: steady-state decoding is allocation-free
// for transport packets (probe decoding reuses a growable state buffer).
func TestDecoderZeroAlloc(t *testing.T) {
	var d Decoder
	wire, _ := decoderCases()[0].Marshal(nil)
	// Warm up.
	if _, _, err := d.DecodeInto(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := d.DecodeInto(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decoder allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDecoderTCP(b *testing.B) {
	var d Decoder
	wire, _ := decoderCases()[0].Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.DecodeInto(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalTCP(b *testing.B) {
	wire, _ := decoderCases()[0].Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var p Packet
		if _, err := p.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}
