package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is a 32-bit network address. Host and router addresses live in
// distinct prefixes so topology obfuscation can rewrite router addresses
// without colliding with endpoints.
type Addr uint32

const (
	hostPrefix   = 0x0A000000 // 10.0.0.0/8
	routerPrefix = 0xC0A80000 // 192.168.0.0/16
)

// HostAddr returns the address of the host with the given dense node index.
func HostAddr(node int) Addr { return Addr(hostPrefix | (node + 1)) }

// RouterAddr returns the control address of the switch with the given dense
// node index. Traceroute responses carry these (or obfuscated ones).
func RouterAddr(node int) Addr { return Addr(routerPrefix | (node + 1)) }

// Node recovers the dense node index from a host or router address, or -1
// if the address is not in either prefix.
func (a Addr) Node() int {
	switch {
	case uint32(a)&0xFF000000 == hostPrefix:
		return int(uint32(a)&0x00FFFFFF) - 1
	case uint32(a)&0xFFFF0000 == routerPrefix:
		return int(uint32(a)&0x0000FFFF) - 1
	}
	return -1
}

// IsRouter reports whether the address is in the router prefix.
func (a Addr) IsRouter() bool { return uint32(a)&0xFFFF0000 == routerPrefix }

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Proto identifies the layer carried above the network header.
type Proto uint8

// Protocol numbers. ProtoProbe is the FastFlex-specific protocol all
// booster coordination rides on.
const (
	ProtoTCP   Proto = 6
	ProtoUDP   Proto = 17
	ProtoICMP  Proto = 1
	ProtoProbe Proto = 253
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	case ProtoProbe:
		return "probe"
	}
	return fmt.Sprintf("proto%d", uint8(p))
}

// TCPFlags is the TCP control-bit field.
type TCPFlags uint8

// TCP control bits used by the per-flow state tracking boosters.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// ICMPType distinguishes the ICMP messages the simulator generates.
type ICMPType uint8

// ICMP message types. TimeExceeded is what traceroute elicits; topology
// obfuscation rewrites its From address.
const (
	ICMPEchoRequest ICMPType = iota + 1
	ICMPEchoReply
	ICMPTimeExceeded
)

// ICMPInfo is the ICMP layer.
type ICMPInfo struct {
	Type ICMPType
	// From is the address of the router reporting TimeExceeded. Topology
	// obfuscation rewrites this field.
	From Addr
	// OrigSeq echoes the Seq of the probe that triggered the message so
	// tracerouting hosts can match responses to probes.
	OrigSeq uint32
	// OrigTTL echoes the TTL the triggering probe was sent with.
	OrigTTL uint8
}

// Packet is one simulated packet. The struct is the in-memory decoded form;
// Marshal/Unmarshal define the wire format. PayloadLen counts application
// bytes that are accounted for in transmission time but not materialized.
type Packet struct {
	Src, Dst Addr
	TTL      uint8
	Proto    Proto

	// Transport layer (TCP/UDP).
	SrcPort, DstPort uint16
	Flags            TCPFlags
	Seq              uint32

	// PayloadLen is the size of the (unmaterialized) application payload.
	PayloadLen uint16

	ICMP  *ICMPInfo
	Probe *ProbeInfo

	// Suspicion is the dataplane classification tag (0 = clean). It is
	// carried in the FastFlex option so downstream mitigation PPMs can act
	// on upstream detector output, per §3.1's state-sharing edges.
	Suspicion uint8

	// Hops counts switch hops traversed (an INT-style header field).
	// Topology obfuscation uses it to synthesize positionally-stable
	// traceroute responses.
	Hops uint8
}

// FlowKey identifies a five-tuple flow. It is a fixed-size array (not a
// slice) so it is comparable and map-key-ready without allocation.
type FlowKey [13]byte

// Key returns the packet's five-tuple flow key.
func (p *Packet) Key() FlowKey {
	var k FlowKey
	binary.BigEndian.PutUint32(k[0:4], uint32(p.Src))
	binary.BigEndian.PutUint32(k[4:8], uint32(p.Dst))
	k[8] = byte(p.Proto)
	binary.BigEndian.PutUint16(k[9:11], p.SrcPort)
	binary.BigEndian.PutUint16(k[11:13], p.DstPort)
	return k
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	var r FlowKey
	copy(r[0:4], k[4:8])
	copy(r[4:8], k[0:4])
	r[8] = k[8]
	copy(r[9:11], k[11:13])
	copy(r[11:13], k[9:11])
	return r
}

// Src returns the source address encoded in the key.
func (k FlowKey) Src() Addr { return Addr(binary.BigEndian.Uint32(k[0:4])) }

// Dst returns the destination address encoded in the key.
func (k FlowKey) Dst() Addr { return Addr(binary.BigEndian.Uint32(k[4:8])) }

// Hash returns a 64-bit FNV-1a hash of the key, used to index sketches.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range k {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Wire-format section sizes.
const (
	baseHeaderLen = 16 // src(4) dst(4) ttl(1) proto(1) suspicion(1) hops(1) plen(2) l4len(2)
	transportLen  = 9  // sport(2) dport(2) flags(1) seq(4)
	icmpLen       = 10 // type(1) from(4) origseq(4) origttl(1)
	probeFixedLen = 23 // see probe.go
	maxStateLen   = 1 << 12
)

// MinWireLen is the smallest wire size Len can return (a bare network
// header). The simulator uses it to bound worst-case queue occupancy: a
// byte-capped FIFO can never hold more than cap/MinWireLen packets.
const MinWireLen = baseHeaderLen

// Len returns the packet's total wire size in bytes, the number used for
// transmission-time and queue-occupancy accounting.
func (p *Packet) Len() int {
	n := baseHeaderLen + int(p.PayloadLen)
	switch p.Proto {
	case ProtoTCP, ProtoUDP:
		n += transportLen
	case ProtoICMP:
		n += icmpLen
	case ProtoProbe:
		n += probeFixedLen
		if p.Probe != nil {
			n += len(p.Probe.State)
		}
	}
	return n
}

// Marshal appends the packet's wire encoding to buf and returns the
// extended slice.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	var l4 []byte
	switch p.Proto {
	case ProtoTCP, ProtoUDP:
		var t [transportLen]byte
		binary.BigEndian.PutUint16(t[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:4], p.DstPort)
		t[4] = byte(p.Flags)
		binary.BigEndian.PutUint32(t[5:9], p.Seq)
		l4 = t[:]
	case ProtoICMP:
		if p.ICMP == nil {
			return nil, errors.New("packet: ICMP proto without ICMP layer")
		}
		var t [icmpLen]byte
		t[0] = byte(p.ICMP.Type)
		binary.BigEndian.PutUint32(t[1:5], uint32(p.ICMP.From))
		binary.BigEndian.PutUint32(t[5:9], p.ICMP.OrigSeq)
		t[9] = p.ICMP.OrigTTL
		l4 = t[:]
	case ProtoProbe:
		if p.Probe == nil {
			return nil, errors.New("packet: probe proto without probe layer")
		}
		var err error
		l4, err = p.Probe.marshal()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("packet: cannot marshal protocol %v", p.Proto)
	}
	var h [baseHeaderLen]byte
	binary.BigEndian.PutUint32(h[0:4], uint32(p.Src))
	binary.BigEndian.PutUint32(h[4:8], uint32(p.Dst))
	h[8] = p.TTL
	h[9] = byte(p.Proto)
	h[10] = p.Suspicion
	h[11] = p.Hops
	binary.BigEndian.PutUint16(h[12:14], p.PayloadLen)
	binary.BigEndian.PutUint16(h[14:16], uint16(len(l4)))
	buf = append(buf, h[:]...)
	buf = append(buf, l4...)
	return buf, nil
}

// Unmarshal decodes one packet from data into p (overwriting all fields)
// and returns the number of bytes consumed. The application payload is
// represented only by PayloadLen and occupies no wire bytes.
func (p *Packet) Unmarshal(data []byte) (int, error) {
	if len(data) < baseHeaderLen {
		return 0, fmt.Errorf("packet: short header: %d bytes", len(data))
	}
	*p = Packet{
		Src:        Addr(binary.BigEndian.Uint32(data[0:4])),
		Dst:        Addr(binary.BigEndian.Uint32(data[4:8])),
		TTL:        data[8],
		Proto:      Proto(data[9]),
		Suspicion:  data[10],
		Hops:       data[11],
		PayloadLen: binary.BigEndian.Uint16(data[12:14]),
	}
	l4len := int(binary.BigEndian.Uint16(data[14:16]))
	rest := data[baseHeaderLen:]
	if len(rest) < l4len {
		return 0, fmt.Errorf("packet: short L4: have %d, want %d", len(rest), l4len)
	}
	l4 := rest[:l4len]
	switch p.Proto {
	case ProtoTCP, ProtoUDP:
		if l4len != transportLen {
			return 0, fmt.Errorf("packet: bad transport length %d", l4len)
		}
		p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.Flags = TCPFlags(l4[4])
		p.Seq = binary.BigEndian.Uint32(l4[5:9])
	case ProtoICMP:
		if l4len != icmpLen {
			return 0, fmt.Errorf("packet: bad ICMP length %d", l4len)
		}
		p.ICMP = &ICMPInfo{
			Type:    ICMPType(l4[0]),
			From:    Addr(binary.BigEndian.Uint32(l4[1:5])),
			OrigSeq: binary.BigEndian.Uint32(l4[5:9]),
			OrigTTL: l4[9],
		}
	case ProtoProbe:
		pi := new(ProbeInfo)
		if err := pi.unmarshal(l4); err != nil {
			return 0, err
		}
		p.Probe = pi
	default:
		return 0, fmt.Errorf("packet: cannot decode protocol %d", data[9])
	}
	return baseHeaderLen + l4len, nil
}

// Clone returns a deep copy, used when the simulator fans a packet out to
// multiple links (probe flooding) so per-hop TTL edits don't alias.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.ICMP != nil {
		ic := *p.ICMP
		q.ICMP = &ic
	}
	if p.Probe != nil {
		q.Probe = p.Probe.clone()
	}
	return &q
}

// String renders a compact human-readable description for traces.
func (p *Packet) String() string {
	switch p.Proto {
	case ProtoICMP:
		return fmt.Sprintf("%v->%v icmp t=%d from=%v", p.Src, p.Dst, p.ICMP.Type, p.ICMP.From)
	case ProtoProbe:
		return fmt.Sprintf("%v->%v %v", p.Src, p.Dst, p.Probe)
	default:
		return fmt.Sprintf("%v:%d->%v:%d %v len=%d susp=%d",
			p.Src, p.SrcPort, p.Dst, p.DstPort, p.Proto, p.Len(), p.Suspicion)
	}
}
