package core

import (
	"fastflex/internal/booster"
	"fastflex/internal/dataplane"
	"fastflex/internal/ppm"
)

// Catalog declares how each standard booster deploys: its lead module,
// pipeline priority, gating modes, and the register arrays it writes.
// installBoosters derives gates and priorities from this table, so the
// declaration and the runtime cannot drift, and ffvet's mode-conflict
// analyzer audits the same table offline: two boosters whose modes can be
// co-active in one mode set must not write the same register array
// without an ordering edge (a distinct priority).
func Catalog() []ppm.CatalogEntry {
	return []ppm.CatalogEntry{
		{
			Booster:  "lfa-detect",
			Lead:     "lfa-detect/classifier",
			Priority: dataplane.PriDetect,
			Modes:    []dataplane.ModeID{},
			Writes:   []string{"flow-table", "link-load"},
		},
		{
			Booster:  "heavyhitter",
			Lead:     "heavyhitter/topk",
			Priority: dataplane.PriDetect + 1,
			Modes:    []dataplane.ModeID{},
			Writes:   []string{"hh-sketch", "hh-topk"},
		},
		{
			Booster:  "obfuscate",
			Lead:     "obfuscate/virtual-topo",
			Priority: dataplane.PriDetect + 50,
			Modes:    []dataplane.ModeID{booster.ModeMitigate},
			Writes:   []string{},
		},
		{
			Booster:  "reroute",
			Lead:     "reroute/util-table",
			Priority: dataplane.PriReroute,
			Modes:    []dataplane.ModeID{booster.ModeReroute, booster.ModeMitigate},
			Writes:   []string{"best-path-table", "flowlet-table"},
		},
		{
			Booster:  "dropper",
			Lead:     "dropper/verdict",
			Priority: dataplane.PriMitigate,
			Modes:    []dataplane.ModeID{booster.ModeMitigate, booster.ModeDDoS},
			Writes:   []string{"drop-counters"},
		},
	}
}

// catalogEntry returns the catalog row for a booster. Unknown names panic:
// the catalog and installBoosters ship together, so a miss is a build bug.
func catalogEntry(name string) ppm.CatalogEntry {
	for _, e := range Catalog() {
		if e.Booster == name {
			return e
		}
	}
	panic("core: booster " + name + " missing from Catalog")
}

// gateFor builds the dataplane mode gate for a catalog entry: the listed
// modes, or the always-on default mode when none are listed.
func gateFor(e ppm.CatalogEntry) dataplane.ModeSet {
	if len(e.Modes) == 0 {
		return 1 // gated on the default mode: always on
	}
	var s dataplane.ModeSet
	for _, m := range e.Modes {
		s = s.With(m)
	}
	return s
}
