package core

import (
	"fmt"

	"fastflex/internal/state"
)

// snapshotBuildEpochs records each switch's install epoch and router FIB
// version at the end of New: the epochs are the reference Reset compares
// against to detect reconfiguration, the FIB versions the reference it
// compares against to decide whether routes must be reinstalled at all.
func (f *Fabric) snapshotBuildEpochs() {
	sws := f.Net.G.Switches()
	f.buildEpochs = make([]uint64, len(sws))
	f.buildFIBs = make([]uint64, len(sws))
	for i, sw := range sws {
		f.buildEpochs[i] = f.Net.Switch(sw).Epoch()
		f.buildFIBs[i] = f.Net.Router(sw).FIBVersion()
	}
}

// fibsClean reports whether every switch router's FIB is untouched since
// the build-time snapshot: no reactive TE cycle or manual SetRoute ran, so
// the tables still hold exactly New's deterministic static install.
func (f *Fabric) fibsClean() bool {
	sws := f.Net.G.Switches()
	for i, sw := range sws {
		if f.Net.Router(sw).FIBVersion() != f.buildFIBs[i] {
			return false
		}
	}
	return true
}

// Reset returns a fully built fabric to its pre-run state, re-seeded at
// seed, so it can be run again without rebuilding: the network rewinds
// (netsim.Network.Reset), every switch and its installed PPMs rewind
// (dataplane.Switch.ResetRun), the TE controller's static routes and the
// inter-switch router routes reinstall — but only on routers whose FIB
// actually mutated during the run (a reactive TE cycle); untouched tables
// still hold exactly the build-time install and are kept as-is — the mode
// log clears, and the telemetry heartbeat re-arms. Build work that depends
// only on the topology and configuration — the merged dataflow, the
// placement, the compiled pipeline cache — survives untouched; that is the
// whole saving.
//
// The contract, pinned by experiment's reset-vs-fresh goldens: running a
// reset fabric produces byte-identical results to running a freshly built
// fabric with the same configuration and seed, because Reset replays New's
// event-creation order (utilization ticker first, heartbeat second) against
// rewound engine sequence counters, RNG streams, and rank owners.
//
// Reset fails — mutating nothing — on fabrics whose installed program set
// changed since build (a ScaleOut repurpose, a manual Install/Uninstall):
// it can rewind run state, not reconfiguration. Callers treat an error as
// "rebuild from scratch".
func (f *Fabric) Reset(seed int64) error {
	if f.Scaler.Repurposed > 0 {
		return fmt.Errorf("core: fabric was repurposed %d time(s) since build; reset cannot rewind reconfiguration",
			f.Scaler.Repurposed)
	}
	sws := f.Net.G.Switches()
	for i, sw := range sws {
		if got := f.Net.Switch(sw).Epoch(); got != f.buildEpochs[i] {
			return fmt.Errorf("core: switch %d install epoch %d differs from build-time %d; program set changed since build",
				sw, got, f.buildEpochs[i])
		}
	}
	fibClean := f.fibsClean()
	for _, sw := range sws {
		if err := f.Net.Switch(sw).ResetRun(); err != nil {
			return err
		}
	}
	f.Net.Reset(seed)
	f.Cfg.Net.Seed = seed
	// Replay New's post-netsim setup in build order. None of these schedule
	// events, so the heartbeat re-arm below lands on coordinator sequence
	// number 1, right after the utilization ticker — exactly as in New.
	f.TE.ResetRun()
	if !fibClean {
		// A reactive TE cycle rewrote routes mid-run: tear the FIBs down
		// and replay New's install. Both installs are deterministic pure
		// functions of the topology, so the result is byte-identical to a
		// fresh build; re-snapshot so the next reset can skip again.
		for _, sw := range sws {
			f.Net.Router(sw).ClearRoutes()
		}
		f.TE.InstallStatic()
		state.RouterRoutesForSwitches(f.Net)
		for i, sw := range sws {
			f.buildFIBs[i] = f.Net.Router(sw).FIBVersion()
		}
	}
	for i := range f.modeLog {
		f.modeLog[i] = f.modeLog[i][:0]
	}
	if f.heartbeat != nil {
		f.heartbeat.Rearm()
	}
	return nil
}
