package core

import (
	"testing"
	"time"

	"fastflex/internal/booster"
	"fastflex/internal/dataplane"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
)

func TestFabricScaleOut(t *testing.T) {
	sc := newLFAScenario(t, Config{}, 2, 2)
	fab := sc.fab
	// Background traffic so the repurposing disruption would be visible.
	src := netsim.NewCBRSource(fab.Net, sc.users[0], sc.srvAddr[0], 1, 80,
		packet.ProtoTCP, 1000, 5e6)
	src.Start()
	fab.Run(time.Second)

	var doneErr error
	completed := false
	target := sc.f.DetourB
	err := fab.ScaleOut(target, 2*time.Second, func(sw *dataplane.Switch) error {
		// Repurpose the detour switch into a scrubber: add an ACL that
		// hard-blocks a known-bad source.
		acl := booster.NewAccessControl(target, 32)
		if err := acl.AddRule(booster.ACLRule{Src: packet.HostAddr(999), Action: booster.ACLDeny}); err != nil {
			return err
		}
		return sw.Install(dataplane.Program{PPM: acl, Priority: dataplane.PriMitigate + 1, Modes: 1})
	}, func(err error) { completed = true; doneErr = err })
	if err != nil {
		t.Fatal(err)
	}
	if !fab.Net.Switch(target).Reconfiguring {
		t.Fatal("switch not in blackout during repurpose")
	}
	fab.Run(5 * time.Second)
	if !completed || doneErr != nil {
		t.Fatalf("scale-out did not complete cleanly: completed=%v err=%v", completed, doneErr)
	}
	if fab.Net.Switch(target).Reconfiguring {
		t.Fatal("switch stuck in blackout")
	}
	if fab.Net.Switch(target).Lookup("acl@8") == nil {
		t.Fatal("new program not installed after repurpose")
	}
	// Traffic kept flowing (fast reroute masked the blackout; this flow's
	// path does not even cross the detour by default).
	recv := fab.Net.Host(sc.servers[0]).RecvBytes(packet.HostAddr(int(sc.users[0])))
	if recv < 2e6 {
		t.Fatalf("traffic starved during scale-out: %d bytes", recv)
	}
}

func TestFabricScaleOutNoNeighbor(t *testing.T) {
	sc := newLFAScenario(t, Config{DefenseOff: true}, 1, 0)
	if err := sc.fab.ScaleOut(999, time.Second, nil, nil); err == nil {
		t.Fatal("scale-out of nonexistent switch accepted")
	}
}
