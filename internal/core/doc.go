// Package core is the FastFlex fabric: the public API that realizes the
// paper's full workflow (Figure 1). Given a topology and a set of
// boosters, it analyzes their dataflow graphs, merges shared PPMs,
// schedules them onto switches under resource budgets, installs the
// multimode pipelines, wires detectors to the distributed mode-change
// protocol, and exposes dynamic scaling — so that, as the network routes
// traffic end-to-end, it also turns defenses on and off as needed.
//
// Layer (DESIGN.md §2): the assembly layer — core may import every
// simulation and defense package below it; only the experiment harness
// (and through it, the service layer) sits above.
//
// Determinism contract (ffvet tier: simulation state): a Fabric owns live
// simulation state, so ffvet applies full strictness regardless of
// reachability — no goroutines, no wall clock, no ambient randomness, no
// order-dependent map iteration (plans and reports iterate sorted key
// slices). One Fabric serves one strictly serial run; concurrency across
// runs belongs to internal/experiment's Runner, never here.
package core
