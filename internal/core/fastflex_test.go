package core

import (
	"strings"
	"testing"
	"time"

	"fastflex/internal/attack"
	"fastflex/internal/booster"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

// lfaScenario deploys a fabric on the Figure-2 topology with users, bots
// and servers.
type lfaScenario struct {
	f       *topo.Figure2
	fab     *Fabric
	users   []topo.NodeID
	bots    []topo.NodeID
	servers []topo.NodeID
	srvAddr []packet.Addr
}

func newLFAScenario(t *testing.T, cfg Config, nUsers, nBots int) *lfaScenario {
	t.Helper()
	f := topo.NewFigure2()
	users := f.AttachUsers(nUsers)
	bots := f.AttachBots(nBots)
	servers := f.AttachServers(2)
	var srvAddr []packet.Addr
	for _, s := range servers {
		srvAddr = append(srvAddr, packet.HostAddr(int(s)))
	}
	cfg.Protected = srvAddr
	fab, err := New(f.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &lfaScenario{f: f, fab: fab, users: users, bots: bots, servers: servers, srvAddr: srvAddr}
}

func TestFabricDeploys(t *testing.T) {
	sc := newLFAScenario(t, Config{}, 2, 2)
	fab := sc.fab
	if fab.Merged == nil || fab.Placement == nil {
		t.Fatal("analysis/placement missing")
	}
	if len(fab.Placement.Unplaced) != 0 {
		t.Fatalf("unplaced modules: %v", fab.Placement.Unplaced)
	}
	// Detectors and controllers on every switch (pervasive).
	nSw := len(sc.f.G.Switches())
	if len(fab.Controllers) != nSw {
		t.Fatalf("controllers on %d of %d switches", len(fab.Controllers), nSw)
	}
	if len(fab.Detectors) != nSw {
		t.Fatalf("detectors on %d of %d switches (pervasive expected)", len(fab.Detectors), nSw)
	}
	if len(fab.Reroutes) == 0 || len(fab.Droppers) == 0 || len(fab.Obfuscators) == 0 {
		t.Fatal("mitigation boosters missing")
	}
	if len(fab.HeavyHit) != 0 {
		t.Fatal("heavy hitter deployed without EnableHeavyHitter")
	}
	rep := fab.Report()
	for _, want := range []string{"merged dataflow", "placement", "boosters"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFabricDefenseOff(t *testing.T) {
	sc := newLFAScenario(t, Config{DefenseOff: true}, 1, 0)
	if len(sc.fab.Detectors) != 0 || len(sc.fab.Controllers) != 0 {
		t.Fatal("DefenseOff deployed boosters")
	}
	// Routing still works.
	n := sc.fab.Net
	n.SendFromHost(sc.users[0], &packet.Packet{
		Src: packet.HostAddr(int(sc.users[0])), Dst: sc.srvAddr[0],
		TTL: 64, Proto: packet.ProtoUDP, PayloadLen: 10,
	})
	n.Run(time.Second)
	if n.Host(sc.servers[0]).TotalRecvBytes() != 10 {
		t.Fatal("routing broken in DefenseOff fabric")
	}
}

func TestFabricDetectsAndActivatesModes(t *testing.T) {
	sc := newLFAScenario(t, Config{}, 4, 40)
	fab := sc.fab

	// Normal user traffic: rate-limited applications (the stable traffic
	// matrix TE provisioned for), NOT greedy bulk TCP — greedy senders
	// would saturate the links on their own and make "high link load"
	// meaningless as an attack signal.
	for i, u := range sc.users {
		netsim.NewCBRSource(fab.Net, u, sc.srvAddr[i%2], uint16(6000+i), 80,
			packet.ProtoTCP, 1200, 10e6).Start()
	}
	// Crossfire: enough aggregate low-rate volume to flood one critical
	// link: 20 bots behind one ingress × 2 servers × 2 flows × 1.5 Mbps
	// = 120 Mbps of individually inconspicuous flows.
	atk := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: sc.bots, Servers: sc.srvAddr, BotRateBps: 1.5e6, FlowsPerBot: 2,
		Start: 2 * time.Second,
	})
	atk.Launch()
	fab.Run(10 * time.Second)

	if !fab.AttackDetected() {
		t.Fatal("LFA never detected")
	}
	// Modes propagate network-wide, including the detour switches.
	for _, sw := range sc.f.G.Switches() {
		if !fab.ModeActiveAt(sw, booster.ModeReroute) {
			t.Fatalf("reroute mode inactive at switch %d", sw)
		}
		if !fab.ModeActiveAt(sw, booster.ModeMitigate) {
			t.Fatalf("mitigate mode inactive at switch %d", sw)
		}
	}
	if len(fab.ModeEvents()) == 0 {
		t.Fatal("no mode events recorded")
	}
	// Rerouting engaged: probes flowed and suspicious traffic moved.
	var rerouted, probes uint64
	for _, rr := range fab.Reroutes {
		rerouted += rr.Rerouted
		probes += rr.Probes
	}
	if probes == 0 {
		t.Fatal("no utilization probes emitted")
	}
	if rerouted == 0 {
		t.Fatal("no suspicious packets rerouted")
	}
	// Illusion of success: highly suspicious flows dropped somewhere.
	var dropped uint64
	for _, d := range fab.Droppers {
		dropped += d.DroppedHigh
	}
	if dropped == 0 {
		t.Fatal("no highly-suspicious packets dropped")
	}
}

func TestFabricClearsAfterAttackSubsides(t *testing.T) {
	sc := newLFAScenario(t, Config{
		LFA: booster.LFAConfig{ClearAfter: time.Second},
	}, 2, 40)
	fab := sc.fab
	for i, u := range sc.users {
		netsim.NewCBRSource(fab.Net, u, sc.srvAddr[i%2], uint16(6000+i), 80,
			packet.ProtoTCP, 1200, 10e6).Start()
	}
	atk := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: sc.bots, Servers: sc.srvAddr, BotRateBps: 1.5e6, FlowsPerBot: 2,
		Start: time.Second,
	})
	atk.Launch()
	fab.Run(8 * time.Second)
	if !fab.AttackDetected() {
		t.Fatal("setup: attack not detected")
	}
	atk.Stop()
	fab.Run(20 * time.Second)
	if fab.AttackDetected() {
		t.Fatal("attack flag stuck after attacker stopped")
	}
	for _, sw := range sc.f.G.Switches() {
		if fab.ModeActiveAt(sw, booster.ModeMitigate) {
			t.Fatalf("mitigation mode stuck at switch %d", sw)
		}
	}
}

func TestFabricObfuscationStabilizesBotTraceroutes(t *testing.T) {
	sc := newLFAScenario(t, Config{}, 2, 40)
	fab := sc.fab
	for i, u := range sc.users {
		netsim.NewCBRSource(fab.Net, u, sc.srvAddr[i%2], uint16(6000+i), 80,
			packet.ProtoTCP, 1200, 10e6).Start()
	}
	atk := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: sc.bots, Servers: sc.srvAddr, BotRateBps: 1.5e6, FlowsPerBot: 2,
		Rolling: true, ScoutEvery: 2 * time.Second,
	})
	atk.Launch()
	fab.Run(20 * time.Second)
	var fabricated uint64
	for _, o := range fab.Obfuscators {
		fabricated += o.Fabricated
	}
	if fabricated == 0 {
		t.Fatal("obfuscator never engaged on bot traceroutes")
	}
	// A few early rolls are expected while the fiction first replaces
	// reality for each bot group; after that the stable virtual topology
	// must pin the attacker: no further rolls in the second half.
	if atk.Rolls > 5 {
		t.Fatalf("attacker rolled %d times despite obfuscation", atk.Rolls)
	}
	rollsAt20 := atk.Rolls
	fab.Run(40 * time.Second)
	if atk.Rolls != rollsAt20 {
		t.Fatalf("attacker still rolling late in the run (%d → %d): fiction not stable",
			rollsAt20, atk.Rolls)
	}
}

func TestFabricNoSharingStillDeploys(t *testing.T) {
	sc := newLFAScenario(t, Config{NoSharing: true}, 1, 1)
	if sc.fab.Merged.SharedCount != 0 {
		t.Fatal("sharing happened despite NoSharing")
	}
	if len(sc.fab.Detectors) == 0 {
		t.Fatal("no detectors without sharing")
	}
}

func TestFabricHeavyHitterPath(t *testing.T) {
	sc := newLFAScenario(t, Config{
		EnableHeavyHitter:  true,
		DisableObfuscation: true, // free stages for the HashPipe
		HH:                 booster.HHConfig{Epoch: 500 * time.Millisecond, ThresholdPkts: 500},
	}, 2, 6)
	fab := sc.fab
	if len(fab.HeavyHit) == 0 {
		t.Fatal("heavy hitter not deployed")
	}
	vol := attack.NewVolumetric(fab.Net, sc.bots, sc.srvAddr[0], 30e6)
	vol.Start()
	fab.Run(5 * time.Second)
	active := false
	for _, hh := range fab.HeavyHit {
		if hh.Active() {
			active = true
		}
	}
	if !active {
		t.Fatal("volumetric attack not flagged")
	}
	var dropped uint64
	for _, d := range fab.Droppers {
		dropped += d.DroppedHigh
	}
	if dropped == 0 {
		t.Fatal("heavy hitters not dropped (ModeDDoS gating broken?)")
	}
}
