package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fastflex/internal/booster"
	"fastflex/internal/control"
	"fastflex/internal/dataplane"
	"fastflex/internal/eventsim"
	"fastflex/internal/mode"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/place"
	"fastflex/internal/ppm"
	"fastflex/internal/state"
	"fastflex/internal/topo"
)

// Config assembles a fabric. The zero value plus a topology is a working
// LFA-defense deployment; fields override individual subsystems.
type Config struct {
	// Net configures the underlying simulator.
	Net netsim.Config
	// Protected is the victim prefix the LFA detector guards.
	Protected []packet.Addr
	// Region assigns switches to mode regions; nil puts everything in
	// region 1.
	Region func(topo.NodeID) uint16

	// Booster configurations.
	LFA       booster.LFAConfig
	Reroute   booster.RerouteConfig
	Dropper   booster.DropperConfig
	Obfuscate booster.ObfuscateConfig
	HH        booster.HHConfig
	Mode      mode.Config

	// Feature switches (ablations).
	EnableHeavyHitter  bool // volumetric DDoS detection (off in pure LFA scenarios)
	DisableObfuscation bool
	DisableDropper     bool
	DisableReroute     bool
	NoSharing          bool // ablation A2: merge without PPM sharing
	Policy             place.Policy

	// DefenseOff builds the fabric with routing only — the substrate for
	// baseline runs.
	DefenseOff bool
}

// Fabric is a deployed FastFlex network.
type Fabric struct {
	Net *netsim.Network
	TE  *control.TEController
	Cfg Config

	Merged    *ppm.Merged
	Placement *place.Placement

	Controllers map[topo.NodeID]*mode.Controller
	Detectors   map[topo.NodeID]*booster.LFADetector
	Reroutes    map[topo.NodeID]*booster.Reroute
	Droppers    map[topo.NodeID]*booster.Dropper
	Obfuscators map[topo.NodeID]*booster.Obfuscator
	HeavyHit    map[topo.NodeID]*booster.HeavyHitter
	Receivers   map[topo.NodeID]*state.Receiver

	Scaler *state.Repurposer

	// modeLog records applied mode transitions per switch, indexed densely
	// by node ID. Each switch's OnChange hook appends only to its own
	// element — a distinct memory word per switch, so under the sharded
	// engine concurrent shards never touch shared state (a map would race
	// on its internal buckets even with distinct keys); the ModeEvents
	// accessor merges the logs into one (At, Switch)-ordered view.
	modeLog [][]ModeEvent

	// heartbeat is the telemetry ticker New arms (nil for DefenseOff
	// fabrics, which have none); Reset re-arms it so its event lands in
	// the same coordinator sequence slot a fresh build would give it.
	heartbeat *eventsim.Ticker
	// buildEpochs snapshots each switch's install epoch (in G.Switches()
	// order) when New finishes. Reset refuses fabrics whose program sets
	// changed since — it can rewind run state, not reconfiguration.
	buildEpochs []uint64
	// buildFIBs snapshots each switch router's FIB mutation version (same
	// order) after New's route install. Reset skips the clear-and-reinstall
	// for a run that never touched the FIBs — the tables still hold exactly
	// the deterministic static install, so skipping is byte-identical.
	buildFIBs []uint64
}

// ModeEvent is one applied mode transition at one switch.
type ModeEvent struct {
	At     time.Duration
	Switch topo.NodeID
	Mode   dataplane.ModeID
	Active bool
}

// ModeEvents returns every applied mode transition network-wide, merged
// across the per-switch logs and ordered by (At, Switch). The order is
// independent of both map iteration and the shard count the run used.
func (f *Fabric) ModeEvents() []ModeEvent {
	var out []ModeEvent
	for _, evs := range f.modeLog {
		out = append(out, evs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// New deploys a fabric on the topology: Figure 1 steps (a)–(c) plus
// runtime wiring. The default TE configuration is installed; Run starts
// the clock.
func New(g *topo.Graph, cfg Config) (*Fabric, error) {
	if cfg.Region == nil {
		cfg.Region = func(topo.NodeID) uint16 { return 1 }
	}
	n := netsim.New(g, cfg.Net)
	f := &Fabric{
		Net:         n,
		Cfg:         cfg,
		Controllers: make(map[topo.NodeID]*mode.Controller),
		Detectors:   make(map[topo.NodeID]*booster.LFADetector),
		Reroutes:    make(map[topo.NodeID]*booster.Reroute),
		Droppers:    make(map[topo.NodeID]*booster.Dropper),
		Obfuscators: make(map[topo.NodeID]*booster.Obfuscator),
		HeavyHit:    make(map[topo.NodeID]*booster.HeavyHitter),
		Receivers:   make(map[topo.NodeID]*state.Receiver),
		modeLog:     make([][]ModeEvent, len(g.Nodes)),
	}
	// Stable-mode TE (centralized, computed once up front).
	f.TE = control.NewTEController(n, control.Config{})
	f.TE.InstallStatic()
	state.RouterRoutesForSwitches(n)
	f.Scaler = state.NewRepurposer(n)

	if cfg.DefenseOff {
		f.snapshotBuildEpochs()
		return f, nil
	}

	// (a)+(b): analyze boosters and merge shared PPMs.
	merged, err := ppm.Merge(ppm.StandardBoosters(), !cfg.NoSharing)
	if err != nil {
		return nil, err
	}
	f.Merged = merged

	// (c): schedule the merged graph over the default traffic paths, and
	// prove the result resource-sound before installing anything.
	paths := defaultPaths(g)
	budget := place.UniformBudget(g, remainingBudget())
	scheduleIn := place.Input{
		G: g, Merged: merged, Budget: budget, Paths: paths, Policy: cfg.Policy,
	}
	placement, err := place.Schedule(scheduleIn)
	if err != nil {
		return nil, err
	}
	if err := place.Verify(scheduleIn, placement); err != nil {
		return nil, fmt.Errorf("core: placement failed verification: %w", err)
	}
	f.Placement = placement

	// Runtime wiring: controllers and receivers everywhere, executable
	// boosters where the scheduler placed their lead modules.
	for _, sw := range g.Switches() {
		if err := f.installControl(sw); err != nil {
			return nil, err
		}
	}
	if err := f.installBoosters(); err != nil {
		return nil, err
	}
	// Telemetry heartbeat: a self-addressed probe per switch per period,
	// so time-gated PPM logic (detector epochs, alarm clears) advances
	// even on switches that momentarily carry no traffic. This models the
	// switch-local timers real hardware drives register evaluation with.
	f.heartbeat = eventsim.NewTicker(n.Eng, 100*time.Millisecond, func() {
		for _, sw := range g.Switches() {
			hb := &packet.Packet{
				Src: packet.RouterAddr(int(sw)), Dst: packet.RouterAddr(int(sw)),
				TTL: 2, Proto: packet.ProtoProbe,
				Probe: &packet.ProbeInfo{Kind: packet.ProbeUtil,
					Origin: packet.RouterAddr(int(sw)), DstSwitch: uint16(sw)},
			}
			n.OriginateAt(sw, hb)
		}
	})
	f.snapshotBuildEpochs()
	return f, nil
}

// remainingBudget is the per-switch budget left for boosters after the
// always-on base programs (router, mode controller, state receiver).
func remainingBudget() dataplane.Resources {
	b := dataplane.TofinoLike()
	base := dataplane.NewRouter(0).Resources().
		Add((&state.Receiver{}).Resources()).
		Add(dataplane.Resources{Stages: 1, SRAMKB: 32, TCAM: 4, ALUs: 1}) // mode controller
	return b.Sub(base)
}

func defaultPaths(g *topo.Graph) []topo.Path {
	var paths []topo.Path
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if p, ok := g.ShortestPath(a, b, nil); ok {
				paths = append(paths, p)
			}
		}
	}
	return paths
}

func (f *Fabric) installControl(sw topo.NodeID) error {
	s := f.Net.Switch(sw)
	mc := f.Cfg.Mode
	mc.Region = f.Cfg.Region(sw)
	reassert := f.Cfg.LFA.ReassertEvery
	if reassert == 0 {
		reassert = 500 * time.Millisecond
	}
	if mc.MinDwell == 0 {
		// Dwell must exceed the detectors' re-assertion period so that a
		// premature clear from one detector cannot flap modes that other
		// detectors keep asserting.
		mc.MinDwell = 3 * reassert
	}
	if mc.SoftTTL == 0 {
		// Modes are leases: if every detector stops re-asserting, they
		// expire on their own even if explicit clears were suppressed.
		mc.SoftTTL = 6 * reassert
	}
	ctrl := mode.NewController(sw, s.SetMode, s.SeenProbe, mc)
	ctrl.OnChange = func(m dataplane.ModeID, active bool, now time.Duration) {
		f.modeLog[sw] = append(f.modeLog[sw], ModeEvent{At: now, Switch: sw, Mode: m, Active: active})
	}
	f.Controllers[sw] = ctrl
	if err := s.Install(dataplane.Program{PPM: ctrl, Priority: dataplane.PriControl, Modes: 1}); err != nil {
		return err
	}
	recv := state.NewReceiver(sw, state.FECConfig{Parity: true})
	f.Receivers[sw] = recv
	return s.Install(dataplane.Program{PPM: recv, Priority: dataplane.PriControl + 1, Modes: 1})
}

// switchesFor returns the switches hosting the named lead module.
func (f *Fabric) switchesFor(lead string) []topo.NodeID {
	for mi, m := range f.Merged.Modules {
		for _, owner := range m.Owners {
			if owner == lead {
				return f.Placement.ByModule[mi]
			}
		}
	}
	return nil
}

func (f *Fabric) installBoosters() error {
	g := f.Net.G
	dstSwitch := booster.EdgeSwitchMap(g)

	lfaEnt := catalogEntry("lfa-detect")
	for _, sw := range f.switchesFor(lfaEnt.Lead) {
		sw := sw
		lfaCfg := f.Cfg.LFA
		lfaCfg.Protected = f.Cfg.Protected
		if lfaCfg.ExternalEvidence == nil {
			// Co-located mitigation activity is evidence the attack is
			// ongoing even while links are calm (the dropper absorbs it).
			lfaCfg.ExternalEvidence = func() uint64 {
				if dr := f.Droppers[sw]; dr != nil {
					return dr.DroppedHigh
				}
				return 0
			}
		}
		det := booster.NewLFADetector(sw, f.Net.SwitchLinks(sw), f.Net.LinkLoad, lfaCfg)
		det.Alarm = f.lfaAlarm(sw)
		f.Detectors[sw] = det
		if err := f.Net.Switch(sw).Install(dataplane.Program{
			PPM: det, Priority: lfaEnt.Priority, Modes: gateFor(lfaEnt),
		}); err != nil {
			return fmt.Errorf("core: installing LFA detector: %w", err)
		}
	}
	if f.Cfg.EnableHeavyHitter {
		ent := catalogEntry("heavyhitter")
		for _, sw := range f.switchesFor(ent.Lead) {
			sw := sw
			hh := booster.NewHeavyHitter(sw, f.Cfg.HH)
			hh.Alarm = f.hhAlarm(sw)
			f.HeavyHit[sw] = hh
			if err := f.Net.Switch(sw).Install(dataplane.Program{
				PPM: hh, Priority: ent.Priority, Modes: gateFor(ent),
			}); err != nil {
				return fmt.Errorf("core: installing heavy hitter: %w", err)
			}
		}
	}
	if !f.Cfg.DisableObfuscation {
		ent := catalogEntry("obfuscate")
		for _, sw := range f.switchesFor(ent.Lead) {
			obf := booster.NewObfuscator(sw, f.Cfg.Obfuscate)
			f.Obfuscators[sw] = obf
			if err := f.Net.Switch(sw).Install(dataplane.Program{
				PPM: obf, Priority: ent.Priority, Modes: gateFor(ent),
			}); err != nil {
				return fmt.Errorf("core: installing obfuscator: %w", err)
			}
		}
	}
	if !f.Cfg.DisableReroute {
		ent := catalogEntry("reroute")
		for _, sw := range f.switchesFor(ent.Lead) {
			s := f.Net.Switch(sw)
			rr := booster.NewReroute(sw, g, dstSwitch, f.Net.LinkLoad, s.SeenProbe, f.Cfg.Reroute)
			f.Reroutes[sw] = rr
			if err := s.Install(dataplane.Program{
				PPM: rr, Priority: ent.Priority, Modes: gateFor(ent),
			}); err != nil {
				return fmt.Errorf("core: installing reroute: %w", err)
			}
		}
	}
	if !f.Cfg.DisableDropper {
		ent := catalogEntry("dropper")
		for _, sw := range f.switchesFor(ent.Lead) {
			dr := booster.NewDropper(sw, f.Cfg.Dropper)
			f.Droppers[sw] = dr
			if err := f.Net.Switch(sw).Install(dataplane.Program{
				PPM: dr, Priority: ent.Priority, Modes: gateFor(ent),
			}); err != nil {
				return fmt.Errorf("core: installing dropper: %w", err)
			}
		}
	}
	return nil
}

// lfaAlarm wires a detector's alarm into the distributed mode protocol:
// on attack, activate congestion-aware rerouting and then the full
// mitigation mode (pinning + obfuscation + dropping) for the detector's
// region; on subsidence, clear them.
func (f *Fabric) lfaAlarm(sw topo.NodeID) booster.AlarmFunc {
	return func(ctx *dataplane.Context, a booster.Alarm) {
		ctrl := f.Controllers[sw]
		if ctrl == nil {
			return
		}
		region := f.Cfg.Region(sw)
		if a.Active {
			ctrl.RequestActivate(ctx, booster.ModeReroute, region)
			ctrl.RequestActivate(ctx, booster.ModeMitigate, region)
		} else {
			ctrl.RequestClear(ctx, booster.ModeMitigate, region)
			ctrl.RequestClear(ctx, booster.ModeReroute, region)
		}
	}
}

func (f *Fabric) hhAlarm(sw topo.NodeID) booster.AlarmFunc {
	return func(ctx *dataplane.Context, a booster.Alarm) {
		ctrl := f.Controllers[sw]
		if ctrl == nil {
			return
		}
		region := f.Cfg.Region(sw)
		if a.Active {
			ctrl.RequestActivate(ctx, booster.ModeDDoS, region)
		} else {
			ctrl.RequestClear(ctx, booster.ModeDDoS, region)
		}
	}
}

// Run advances the simulation to the horizon.
func (f *Fabric) Run(horizon time.Duration) { f.Net.Run(horizon) }

// ScaleOut repurposes a switch at runtime to host additional defense
// programs — §3.4's dynamic scaling for attacks that exceed the placement
// phase's best-effort planning. Stateful program state ships (FEC-protected)
// to a neighboring switch before the reconfiguration blackout, neighbors
// fast-reroute around the switch, install runs during the blackout, and
// state migrates back. done (optional) fires when the switch is live again.
func (f *Fabric) ScaleOut(target topo.NodeID, latency time.Duration,
	install func(*dataplane.Switch) error, done func(error)) error {
	peer := topo.NodeID(-1)
	for _, nb := range f.Net.G.Neighbors(target) {
		if f.Net.G.Nodes[nb].Kind == topo.Switch {
			peer = nb
			break
		}
	}
	if peer < 0 {
		return fmt.Errorf("core: switch %d has no switch neighbor to hold state", target)
	}
	return f.Scaler.Repurpose(target, state.RepurposeConfig{
		Latency:       latency,
		FastReroute:   true,
		TransferState: true,
		StatePeer:     peer,
		FEC:           state.FECConfig{Parity: true},
	}, install, done)
}

// ModeActiveAt reports whether a mode is active on a switch.
func (f *Fabric) ModeActiveAt(sw topo.NodeID, m dataplane.ModeID) bool {
	return f.Net.Switch(sw).Modes().Has(m)
}

// AttackDetected reports whether any LFA detector currently flags an
// attack.
func (f *Fabric) AttackDetected() bool {
	//ffvet:ok boolean OR over detectors is order-independent
	for _, d := range f.Detectors {
		if d.Active() {
			return true
		}
	}
	return false
}

// Report summarizes the deployment for logs and the fftopo tool.
func (f *Fabric) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FastFlex fabric: %d switches, %d hosts\n",
		len(f.Net.G.Switches()), len(f.Net.G.Hosts()))
	if f.Merged != nil {
		fmt.Fprintf(&b, "merged dataflow: %d modules (%d shared), saved %v\n",
			len(f.Merged.Modules), f.Merged.SharedCount, f.Merged.SavedResources)
	}
	if f.Placement != nil {
		fmt.Fprintf(&b, "placement: coverage %.0f%%, mitigation distance %.2f hops, %d unplaced\n",
			100*f.Placement.DetectorCoverage, f.Placement.MeanMitigationDistance, len(f.Placement.Unplaced))
	}
	fmt.Fprintf(&b, "boosters: %d detectors, %d reroutes, %d droppers, %d obfuscators, %d heavy-hitters\n",
		len(f.Detectors), len(f.Reroutes), len(f.Droppers), len(f.Obfuscators), len(f.HeavyHit))
	return b.String()
}
