// Command ffsim runs one FastFlex scenario and prints the time series and
// summary. It is the quickest way to watch the multimode data plane work.
//
// Usage:
//
//	ffsim -defense fastflex -duration 60s
//	ffsim -defense baseline -bots 60 -plot
//	ffsim -defense none
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fastflex/internal/experiment"
	"fastflex/internal/metrics"
)

func main() {
	defense := flag.String("defense", "fastflex", "defense arm: fastflex | baseline | none")
	duration := flag.Duration("duration", 60*time.Second, "simulated duration")
	users := flag.Int("users", 8, "number of user hosts")
	bots := flag.Int("bots", 40, "number of bot hosts")
	servers := flag.Int("servers", 8, "number of public servers near the victim")
	seed := flag.Int64("seed", 1, "simulation seed")
	plot := flag.Bool("plot", true, "print an ASCII plot of the throughput series")
	rerouteAll := flag.Bool("reroute-all", false, "ablation: reroute all flows instead of pinning normal ones")
	flag.Parse()

	var d experiment.Defense
	switch *defense {
	case "fastflex":
		d = experiment.DefenseFastFlex
	case "baseline":
		d = experiment.DefenseBaseline
	case "none":
		d = experiment.DefenseNone
	default:
		fmt.Fprintf(os.Stderr, "ffsim: unknown defense %q\n", *defense)
		os.Exit(2)
	}
	res := experiment.Figure3(experiment.Figure3Config{
		Defense:            d,
		Duration:           *duration,
		Users:              *users,
		Bots:               *bots,
		Servers:            *servers,
		Seed:               *seed,
		RerouteAllOverride: *rerouteAll,
	})
	for _, n := range res.Notes {
		fmt.Println(n)
	}
	if *plot {
		fmt.Print(metrics.AsciiPlot(res.Throughput, 72, 10))
	}
	fmt.Printf("summary: stable=%.1fMbps attack-window=%.0f%% degraded<80%%=%.0f%% rolls=%d\n",
		res.StableMean*8/1e6, 100*res.AttackMean, 100*res.FractionDegraded, res.Rolls)
}
