// Command ffvet is FastFlex's own static verifier. It type-checks the
// module from source (stdlib-only — no go/packages) and enforces the
// invariants DESIGN.md documents:
//
//	determinism    all randomness flows from eventsim; no time.Now, no
//	               private rand sources, no goroutines or unordered map
//	               iteration inside simulation packages
//	layering       the import DAG of DESIGN.md §2
//	ppm-lint       booster blueprints are acyclic, fit every registered
//	               switch profile, and pass the equivalence-signature audit
//	mode-conflict  no two co-active boosters write one register array
//	               without an ordering edge
//
// Usage:
//
//	ffvet [./...]
//
// ffvet always analyzes the whole module containing the working
// directory; the ./... argument is accepted for familiarity. Findings
// print as file:line:col: [analyzer] message, and the exit status is
// nonzero when there are any.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"fastflex/internal/analysis"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAll(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffvet:", err)
		os.Exit(2)
	}
	diags = append(diags, analysis.Domain()...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ffvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
