// Command ffvet is FastFlex's own static verifier. It type-checks the
// module from source (stdlib-only — no go/packages), builds a
// conservative whole-module call graph, and enforces the invariants
// DESIGN.md documents:
//
//	determinism     no path from a simulation entrypoint reaches a
//	                nondeterminism source (wall clock, ambient rand,
//	                goroutines, channels, sync, unordered map iteration,
//	                FP-order-sensitive reductions); offending paths print
//	                their shortest call chain
//	rank-ownership  ScheduleRank/AfterRank ranks derive from the owning
//	                RankOwner; NewStream keys are not constants; shard
//	                state is written only by its owner or at the barrier
//	hotpath         //ffvet:hotpath functions stay free of maps,
//	                interface dispatch, and hidden allocations
//	layering        the import DAG of DESIGN.md §2
//	ppm-lint        booster blueprints are acyclic, fit every registered
//	                switch profile, and pass the equivalence-signature audit
//	mode-conflict   no two co-active boosters write one register array
//	                without an ordering edge
//	waiver          every //ffvet:ok has a reason and still suppresses
//	                something; every //ffvet:hotpath anchors a function
//
// Usage:
//
//	ffvet [-json] [./...]
//
// ffvet always analyzes the whole module containing the working
// directory; the ./... argument is accepted for familiarity. Findings
// print as file:line:col: [analyzer] message (reachability findings add
// an indented "call chain:" line; hops prefixed "~" are conservative
// dynamic-dispatch edges). With -json the report is a single JSON
// object with findings, waiver statistics, and call-graph size — the
// shape CI archives and gates on. Exit status is 1 when there are
// findings, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fastflex/internal/analysis"
)

// jsonReport is the machine-readable -json shape. Field names are part
// of the CI contract (.github/workflows/ci.yml parses them).
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Waivers  jsonWaivers   `json:"waivers"`
	Graph    jsonGraph     `json:"graph"`
}

type jsonFinding struct {
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

type jsonWaivers struct {
	Total int `json:"total"`
	Used  int `json:"used"`
	Stale int `json:"stale"`
}

type jsonGraph struct {
	Packages  int `json:"packages"`
	Functions int `json:"functions"`
	Edges     int `json:"edges"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffvet:", err)
		os.Exit(2)
	}
	report, err := analysis.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffvet:", err)
		os.Exit(2)
	}
	diags := append(report.Diags, analysis.Domain()...)

	if *jsonOut {
		out := jsonReport{
			Findings: []jsonFinding{},
			Waivers: jsonWaivers{
				Total: report.WaiversTotal,
				Used:  report.WaiversUsed,
				Stale: report.WaiversStale,
			},
			Graph: jsonGraph{
				Packages:  report.Packages,
				Functions: report.Functions,
				Edges:     report.Edges,
			},
		}
		for _, d := range diags {
			out.Findings = append(out.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Chain: d.Chain,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ffvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ffvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
