package main

import (
	"encoding/json"
	"fmt"
	"os"

	"fastflex/internal/experiment"
)

// Benchstat-style baseline comparison: load a committed BENCH_ffbench.json,
// line up per-experiment mean wall times with the current run, print a
// delta table, and report regression when an experiment (or the total) is
// slower than the baseline by more than the threshold.
//
// Wall time is noisy — CI machines share cores — so two guards keep the
// gate from flapping: experiments whose baseline mean is under
// compareMinWallMS are reported but never gate, and the threshold applies
// to the mean over the run's seeds, not any single run.
const compareMinWallMS = 200

// meanWallByID averages wall ms over each experiment's non-failed runs.
func meanWallByID(exps []experimentReport) map[string]float64 {
	out := make(map[string]float64, len(exps))
	for _, er := range exps {
		var sum float64
		var n int
		for _, r := range er.Runs {
			if r.Error == "" {
				sum += r.WallMS
				n++
			}
		}
		if n > 0 {
			out[er.ID] = sum / float64(n)
		}
	}
	return out
}

// compareBaseline prints the comparison table and returns whether any
// gated row regressed beyond thresholdPct.
func compareBaseline(path string, thresholdPct float64,
	defs []experiment.Def, results []experiment.RunResult) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing %s: %w", path, err)
	}
	baseWall := meanWallByID(base.Experiments)

	// Current per-experiment means, computed the same way as the report.
	curWall := make(map[string]float64)
	curN := make(map[string]int)
	for _, rr := range results {
		if rr.Err != nil {
			continue
		}
		curWall[rr.ID] += float64(rr.Wall.Microseconds()) / 1e3
		curN[rr.ID]++
	}

	fmt.Printf("-- wall-time vs %s (threshold %+.0f%%) --\n", path, thresholdPct)
	fmt.Printf("  %-10s %12s %12s %8s\n", "experiment", "base ms", "now ms", "delta")
	var baseTotal, curTotal float64
	for _, d := range defs {
		b, okB := baseWall[d.ID]
		if n := curN[d.ID]; n > 0 {
			curWall[d.ID] /= float64(n)
		}
		c, okC := curWall[d.ID]
		if !okB || !okC {
			fmt.Printf("  %-10s %12s %12s %8s\n", d.ID, dash(okB, b), dash(okC, c), "n/a")
			continue
		}
		baseTotal += b
		curTotal += c
		delta := (c - b) / b * 100
		mark := ""
		if delta > thresholdPct {
			if b >= compareMinWallMS {
				regressed = true
				mark = "  REGRESSION"
			} else {
				mark = "  (under min wall, not gated)"
			}
		}
		fmt.Printf("  %-10s %12.1f %12.1f %+7.1f%%%s\n", d.ID, b, c, delta, mark)
	}
	if baseTotal > 0 {
		delta := (curTotal - baseTotal) / baseTotal * 100
		mark := ""
		if delta > thresholdPct {
			if baseTotal >= compareMinWallMS {
				regressed = true
				mark = "  REGRESSION"
			} else {
				mark = "  (under min wall, not gated)"
			}
		}
		fmt.Printf("  %-10s %12.1f %12.1f %+7.1f%%%s\n", "total", baseTotal, curTotal, delta, mark)
	}
	fmt.Println()
	return regressed, nil
}

func dash(ok bool, v float64) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
