package main

import (
	"encoding/json"
	"fmt"
	"os"

	"fastflex/internal/experiment"
)

// Benchstat-style baseline comparison: load a committed BENCH_ffbench.json,
// line up per-experiment wall times and allocation totals with the current
// run, print a delta table, and report regression when an experiment (or
// the total) is worse than the baseline by more than the threshold.
//
// Wall time is noisy — CI machines share cores — so three guards keep the
// gate from flapping: the gated statistic is the MINIMUM wall time over
// the run's seeds (the min is the run least disturbed by the machine, the
// estimator benchstat recommends for wall clocks), experiments whose
// baseline min is under compareMinWallMS are reported but never gate, and
// allocation — which is deterministic per seed, not noisy — gates on the
// mean with its own tighter threshold and an absolute floor.
const (
	compareMinWallMS = 200
	// compareMinAllocMB: experiments allocating under this at baseline are
	// never gated on allocation (fixed-size table experiments sit in the
	// noise floor of runtime bookkeeping).
	compareMinAllocMB = 1
)

// statsByID reduces each experiment's non-failed runs to the two gated
// statistics: min wall ms and mean allocated MB. allocExact reports
// whether every run contributing to the alloc mean was measured with the
// worker pool to itself (alloc_exact); inexact means carry cross-worker
// bleed and are reported but never gated.
func statsByID(exps []experimentReport) (minWall, meanAlloc map[string]float64, allocExact map[string]bool) {
	minWall = make(map[string]float64, len(exps))
	meanAlloc = make(map[string]float64, len(exps))
	allocExact = make(map[string]bool, len(exps))
	for _, er := range exps {
		var allocSum float64
		n := 0
		exact := true
		for _, r := range er.Runs {
			if r.Error != "" {
				continue
			}
			if cur, ok := minWall[er.ID]; !ok || r.WallMS < cur {
				minWall[er.ID] = r.WallMS
			}
			allocSum += r.AllocMB
			exact = exact && r.AllocExact
			n++
		}
		if n > 0 {
			meanAlloc[er.ID] = allocSum / float64(n)
			allocExact[er.ID] = exact
		}
	}
	return minWall, meanAlloc, allocExact
}

// currentStats renders this run's results into the same experimentReport
// shape the JSON report uses, so baseline and current reductions share one
// code path.
func currentStats(results []experiment.RunResult) (minWall, meanAlloc map[string]float64, allocExact map[string]bool) {
	byID := make(map[string]*experimentReport)
	var order []string
	for _, rr := range results {
		er, ok := byID[rr.ID]
		if !ok {
			er = &experimentReport{ID: rr.ID}
			byID[rr.ID] = er
			order = append(order, rr.ID)
		}
		run := runReport{
			WallMS:     float64(rr.Wall.Microseconds()) / 1e3,
			AllocMB:    float64(rr.AllocBytes) / (1 << 20),
			AllocExact: rr.AllocExact,
		}
		if rr.Err != nil {
			run.Error = rr.Err.Error()
		}
		er.Runs = append(er.Runs, run)
	}
	exps := make([]experimentReport, 0, len(order))
	for _, id := range order {
		exps = append(exps, *byID[id])
	}
	return statsByID(exps)
}

// compareBaseline prints the comparison table and returns whether any
// gated row regressed beyond its threshold. allocThresholdPct gates mean
// allocated bytes per run; allocation is reproducible for a fixed
// configuration, so its default margin (10%) only absorbs Go-version and
// map-layout jitter — but runs under a different engine configuration
// than the baseline (e.g. sharded vs serial, which legitimately carries
// per-shard pools) pass a looser -aregress.
func compareBaseline(path string, thresholdPct, allocThresholdPct float64,
	defs []experiment.Def, results []experiment.RunResult) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing %s: %w", path, err)
	}
	baseWall, baseAlloc, baseExact := statsByID(base.Experiments)
	curWall, curAlloc, curExact := currentStats(results)
	var offenders []string

	fmt.Printf("-- min wall / mean alloc vs %s (wall %+.0f%%, alloc %+.0f%%) --\n",
		path, thresholdPct, allocThresholdPct)
	fmt.Printf("  %-10s %12s %12s %8s %11s %11s %8s\n",
		"experiment", "base ms", "now ms", "delta", "base MB", "now MB", "delta")
	var baseWallTotal, curWallTotal float64
	for _, d := range defs {
		b, okB := baseWall[d.ID]
		c, okC := curWall[d.ID]
		if !okB || !okC {
			fmt.Printf("  %-10s %12s %12s %8s %11s %11s %8s\n",
				d.ID, dash(okB, b), dash(okC, c), "n/a",
				dash(false, 0), dash(false, 0), "n/a")
			continue
		}
		baseWallTotal += b
		curWallTotal += c
		wallDelta := (c - b) / b * 100
		ba, ca := baseAlloc[d.ID], curAlloc[d.ID]
		var allocDelta float64
		if ba > 0 {
			allocDelta = (ca - ba) / ba * 100
		}
		mark := ""
		if wallDelta > thresholdPct {
			if b >= compareMinWallMS {
				regressed = true
				mark = "  WALL REGRESSION"
				offenders = append(offenders, fmt.Sprintf(
					"%s: min wall %.1f ms -> %.1f ms (%+.1f%%, threshold %+.0f%%)",
					d.ID, b, c, wallDelta, thresholdPct))
			} else {
				mark = "  (under min wall, not gated)"
			}
		}
		if allocDelta > allocThresholdPct && ba >= compareMinAllocMB {
			if baseExact[d.ID] && curExact[d.ID] {
				regressed = true
				mark += "  ALLOC REGRESSION"
				offenders = append(offenders, fmt.Sprintf(
					"%s: mean alloc %.2f MB -> %.2f MB (%+.1f%%, threshold %+.0f%%)",
					d.ID, ba, ca, allocDelta, allocThresholdPct))
			} else {
				mark += "  (alloc inexact, not gated)"
			}
		}
		fmt.Printf("  %-10s %12.1f %12.1f %+7.1f%% %11.2f %11.2f %+7.1f%%%s\n",
			d.ID, b, c, wallDelta, ba, ca, allocDelta, mark)
	}
	if baseWallTotal > 0 {
		delta := (curWallTotal - baseWallTotal) / baseWallTotal * 100
		mark := ""
		if delta > thresholdPct {
			if baseWallTotal >= compareMinWallMS {
				regressed = true
				mark = "  WALL REGRESSION"
				offenders = append(offenders, fmt.Sprintf(
					"total: min wall %.1f ms -> %.1f ms (%+.1f%%, threshold %+.0f%%)",
					baseWallTotal, curWallTotal, delta, thresholdPct))
			} else {
				mark = "  (under min wall, not gated)"
			}
		}
		fmt.Printf("  %-10s %12.1f %12.1f %+7.1f%%%s\n",
			"total", baseWallTotal, curWallTotal, delta, mark)
	}
	fmt.Println()
	// Name the offenders on stderr: CI logs truncate tables, and "exit 1"
	// with no culprit sends people diffing the whole table by hand.
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "ffbench: regression gate failed (%d offender(s)):\n", len(offenders))
		for _, o := range offenders {
			fmt.Fprintf(os.Stderr, "  %s\n", o)
		}
	}
	return regressed, nil
}

func dash(ok bool, v float64) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
