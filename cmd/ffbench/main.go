// Command ffbench regenerates every table and figure from the paper plus
// the ablations in DESIGN.md, printing each result as text (and optionally
// CSV). This is the harness behind EXPERIMENTS.md and the CI benchmark
// smoke job.
//
// Runs fan out across a worker pool (experiment.Runner); each run is an
// independent seed-deterministic simulation, and results print in registry
// order, so serial and parallel invocations emit byte-identical experiment
// text. Wall-clock-derived numbers are confined to the JSON report and the
// clearly-delimited trailing "engine throughput" block (whose event and
// packet counts are deterministic; only the /sec rates vary).
//
// Usage:
//
//	ffbench                     # run everything (the full Figure 3 takes ~1min)
//	ffbench -run fig3           # one experiment by id
//	ffbench -list               # list experiment ids
//	ffbench -csv                # also emit CSV blocks
//	ffbench -parallel 4         # worker-pool size (default: all CPUs)
//	ffbench -seeds 5            # run seeded experiments over seeds 1..5
//	ffbench -json               # write BENCH_ffbench.json
//	ffbench -short              # cut-down horizons (CI smoke)
//	ffbench -shards 4           # sharded parallel engine (0 = serial)
//	ffbench -nowarm             # cold-build every run (no warm-fabric reuse)
//	ffbench -check              # exit 1 if shape checks fail
//	ffbench -compare BENCH_ffbench.json   # exit 1 on wall-time or alloc regression
//	ffbench -cpuprofile cpu.pb.gz         # pprof CPU profile of the whole run
//	ffbench -memprofile mem.pb.gz         # pprof allocation profile at exit
//	ffbench -trace trace.out              # runtime execution trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"fastflex/internal/experiment"
)

// report is the BENCH_ffbench.json schema.
type report struct {
	GoMaxProcs  int                `json:"gomaxprocs"`
	Workers     int                `json:"workers"`
	Seeds       []int64            `json:"seeds"`
	Shards      int                `json:"shards"`
	Short       bool               `json:"short"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Experiments []experimentReport `json:"experiments"`
	ShapeErrors []string           `json:"shape_errors"`
}

type experimentReport struct {
	ID      string                `json:"id"`
	Desc    string                `json:"desc"`
	Runs    []runReport           `json:"runs"`
	Metrics map[string]metricJSON `json:"metrics"`
}

type runReport struct {
	Seed   int64   `json:"seed"`
	WallMS float64 `json:"wall_ms"`
	// SetupWallMS + SimWallMS split WallMS: setup is topology and fabric
	// construction (or a warm-fabric reset) plus scenario wiring, sim is
	// everything from the engine starting onward. Zero for experiments
	// that don't instrument the split (the fixed-size table experiments).
	SetupWallMS float64 `json:"setup_wall_ms,omitempty"`
	SimWallMS   float64 `json:"sim_wall_ms,omitempty"`
	AllocMB     float64 `json:"alloc_mb"`
	// AllocExact reports whether AllocMB came from a run with the worker
	// pool to itself: TotalAlloc is process-wide, so concurrent workers
	// bleed into each other's deltas and only -parallel 1 runs measure
	// exactly. The -compare alloc gate only trusts exact runs.
	AllocExact bool `json:"alloc_exact"`
	// Events/Packets are deterministic workload counters (simulation
	// events fired, switch pipeline passes); the *PerSec rates divide
	// them by this run's wall time, so only the rates vary run to run.
	Events        uint64  `json:"events,omitempty"`
	Packets       uint64  `json:"packets,omitempty"`
	EventsPerSec  float64 `json:"events_per_sec,omitempty"`
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	// ModeledHosts is the simulated population (packet hosts plus fluid
	// flow weights) for hybrid-substrate experiments; zero otherwise.
	// EventsPerModeledHost divides the deterministic event count by it —
	// the amortized cost figure behind the planet-scale claim.
	ModeledHosts         uint64  `json:"modeled_hosts,omitempty"`
	EventsPerModeledHost float64 `json:"events_per_modeled_host,omitempty"`
	Error                string  `json:"error,omitempty"`
}

type metricJSON struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	N      int     `json:"n"`
}

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	csv := flag.Bool("csv", false, "also print CSV blocks")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool size for independent runs")
	seeds := flag.Int("seeds", 1, "number of seeds (1..N) for seeded experiments")
	jsonOut := flag.Bool("json", false, "write BENCH_ffbench.json")
	short := flag.Bool("short", false, "run cut-down experiment variants (CI smoke)")
	check := flag.Bool("check", false, "exit 1 if the result shape checks fail")
	compare := flag.String("compare", "", "baseline BENCH_ffbench.json: print a wall-time comparison and exit 1 on regression")
	regress := flag.Float64("regress", 15, "regression threshold for -compare, percent")
	aregress := flag.Float64("aregress", 10, "allocation regression threshold for -compare, percent")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	shards := flag.Int("shards", 0, "engine shard count for simulations (0 = serial engine)")
	nowarm := flag.Bool("nowarm", false, "disable warm-fabric reuse across runs (every run cold-builds)")
	flag.Parse()
	experiment.DefaultShards = *shards

	stopProfiles, err := startProfiles(*cpuprofile, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffbench: %v\n", err)
		os.Exit(1)
	}

	defs := experiment.Registry()
	if *list {
		for _, d := range defs {
			fmt.Printf("%-10s %s\n", d.ID, d.Desc)
		}
		return
	}
	if *runID != "" {
		var picked []experiment.Def
		for _, d := range defs {
			if strings.EqualFold(*runID, d.ID) {
				picked = append(picked, d)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "ffbench: unknown experiment %q (try -list)\n", *runID)
			os.Exit(2)
		}
		defs = picked
	}
	if *seeds < 1 {
		*seeds = 1
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	specs := experiment.Specs(defs, seedList, *short)
	start := time.Now()
	results := (&experiment.Runner{Workers: *parallel, NoWarm: *nowarm}).Run(specs)
	totalWall := time.Since(start)
	agg := experiment.Aggregate(results)

	// Render in registry order: the first seed's full Result, then the
	// cross-seed metric aggregates. Nothing here depends on worker count
	// or scheduling, so the text output is byte-identical for any
	// -parallel value.
	failed := false
	for _, d := range defs {
		for _, rr := range results {
			if rr.ID != d.ID {
				continue
			}
			if rr.Err != nil {
				failed = true
				fmt.Fprintf(os.Stderr, "ffbench: %v\n", rr.Err)
				continue
			}
			if rr.Seed == seedList[0] {
				fmt.Println(rr.Result.String())
				if *csv && rr.Result.Table != nil {
					fmt.Println(rr.Result.Table.CSV())
				}
			}
		}
		if m := agg[d.ID]; *seeds > 1 && d.Seeded && len(m) > 0 {
			fmt.Printf("-- %s over %d seeds --\n", d.ID, *seeds)
			for _, name := range experiment.MetricNames(m) {
				fmt.Printf("  %-28s %s\n", name, m[name])
			}
			fmt.Println()
		}
	}

	printThroughput(defs, results)

	shapeErrs := experiment.ShapeChecks(agg)
	for _, e := range shapeErrs {
		fmt.Fprintf(os.Stderr, "ffbench: shape check failed: %s\n", e)
	}

	stopProfiles()
	if err := writeMemProfile(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "ffbench: %v\n", err)
		os.Exit(1)
	}

	// Compare before -json writes: the baseline and the report default to
	// the same path (BENCH_ffbench.json), and the committed baseline must
	// be read before it is overwritten with this run's numbers.
	regressed := false
	if *compare != "" {
		var err error
		regressed, err = compareBaseline(*compare, *regress, *aregress, defs, results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffbench: comparing baseline: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeReport(defs, seedList, *parallel, *short, totalWall, results, agg, shapeErrs); err != nil {
			fmt.Fprintf(os.Stderr, "ffbench: writing report: %v\n", err)
			os.Exit(1)
		}
	}
	if failed || regressed || (*check && len(shapeErrs) > 0) {
		os.Exit(1)
	}
}

// printThroughput renders the engine-throughput block: per experiment, the
// deterministic workload counters (events fired, pipeline passes — byte-
// identical across worker counts, shard counts, and batching modes) and
// the wall-clock rates they imply, summed over seeds. The rates are the
// one part of ffbench's text that varies run to run; everything above this
// block stays byte-identical.
func printThroughput(defs []experiment.Def, results []experiment.RunResult) {
	printed := false
	for _, d := range defs {
		var events, packets, hosts uint64
		var wall, setup time.Duration
		for _, rr := range results {
			if rr.ID != d.ID || rr.Err != nil || rr.Result == nil {
				continue
			}
			events += rr.Result.Events
			packets += rr.Result.Packets
			hosts += rr.Result.ModeledHosts
			wall += rr.Wall
			setup += rr.Result.SetupWall
		}
		if events == 0 || wall <= 0 {
			continue
		}
		if !printed {
			fmt.Println("-- engine throughput (wall-clock rates vary run to run) --")
			printed = true
		}
		secs := wall.Seconds()
		fmt.Printf("  %-10s %12d events %11d pkts   %8.2f Mev/s %8.2f Mpkt/s",
			d.ID, events, packets, float64(events)/secs/1e6, float64(packets)/secs/1e6)
		if hosts > 0 {
			fmt.Printf("   %d modeled hosts, %.1f ev/host", hosts, float64(events)/float64(hosts))
		}
		if setup > 0 {
			fmt.Printf("   setup %.0f%% of wall", 100*setup.Seconds()/secs)
		}
		fmt.Println()
	}
	if printed {
		fmt.Println()
	}
}

// startProfiles begins CPU profiling and execution tracing if requested,
// returning a stop function to call before writing reports.
func startProfiles(cpuprofile, traceFile string) (stop func(), err error) {
	var stops []func()
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			return nil, err
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}, nil
}

// writeMemProfile dumps an allocation profile (after a GC, so live-heap
// numbers are accurate) if requested.
func writeMemProfile(memprofile string) error {
	if memprofile == "" {
		return nil
	}
	f, err := os.Create(memprofile)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func writeReport(defs []experiment.Def, seeds []int64, workers int, short bool,
	totalWall time.Duration, results []experiment.RunResult,
	agg map[string]map[string]experiment.Agg, shapeErrs []string) error {
	rep := report{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Seeds:       seeds,
		Shards:      experiment.DefaultShards,
		Short:       short,
		TotalWallMS: float64(totalWall.Microseconds()) / 1e3,
		ShapeErrors: shapeErrs,
	}
	if rep.ShapeErrors == nil {
		rep.ShapeErrors = []string{}
	}
	for _, d := range defs {
		er := experimentReport{ID: d.ID, Desc: d.Desc, Metrics: map[string]metricJSON{}}
		for _, rr := range results {
			if rr.ID != d.ID {
				continue
			}
			run := runReport{
				Seed:       rr.Seed,
				WallMS:     float64(rr.Wall.Microseconds()) / 1e3,
				AllocMB:    float64(rr.AllocBytes) / (1 << 20),
				AllocExact: rr.AllocExact,
			}
			if rr.Result != nil && rr.Result.SetupWall > 0 {
				run.SetupWallMS = float64(rr.Result.SetupWall.Microseconds()) / 1e3
				run.SimWallMS = float64((rr.Wall - rr.Result.SetupWall).Microseconds()) / 1e3
			}
			if rr.Result != nil && rr.Result.Events > 0 {
				run.Events = rr.Result.Events
				run.Packets = rr.Result.Packets
				if secs := rr.Wall.Seconds(); secs > 0 {
					run.EventsPerSec = float64(run.Events) / secs
					run.PacketsPerSec = float64(run.Packets) / secs
				}
				if hosts := rr.Result.ModeledHosts; hosts > 0 {
					run.ModeledHosts = hosts
					run.EventsPerModeledHost = float64(run.Events) / float64(hosts)
				}
			}
			if rr.Err != nil {
				run.Error = rr.Err.Error()
			}
			er.Runs = append(er.Runs, run)
		}
		for name, a := range agg[d.ID] {
			er.Metrics[name] = metricJSON{Mean: a.Mean, Stddev: a.Stddev, N: a.N}
		}
		rep.Experiments = append(rep.Experiments, er)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_ffbench.json", append(buf, '\n'), 0o644)
}
