// Command ffbench regenerates every table and figure from the paper plus
// the ablations in DESIGN.md, printing each result as text (and optionally
// CSV). This is the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	ffbench                  # run everything (the full Figure 3 takes ~1min)
//	ffbench -run fig3        # one experiment by id
//	ffbench -list            # list experiment ids
//	ffbench -csv             # also emit CSV blocks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fastflex/internal/experiment"
)

type entry struct {
	id   string
	desc string
	run  func() *experiment.Result
}

func registry() []entry {
	return []entry{
		{"table1", "Figure 1(a): analyzer module resource table", experiment.Table1Analyzer},
		{"fig1merge", "Figure 1(b): merged dataflow graph with sharing", experiment.Figure1Merge},
		{"fig1place", "Figure 1(c): placement onto topologies", experiment.Figure1Place},
		{"fig2", "Figure 2: multimode progression", experiment.Figure2Modes},
		{"fig1d", "Figure 1(d): dynamic scaling at runtime", experiment.Figure1dScale},
		{"fig3", "Figure 3: FastFlex vs baseline under rolling LFA", func() *experiment.Result {
			return experiment.Figure3Compare(experiment.Figure3Config{})
		}},
		{"a1", "A1: mode-change latency vs diameter", experiment.AblationModeLatency},
		{"a2", "A2: PPM sharing", experiment.AblationSharing},
		{"a3", "A3: placement policies", experiment.AblationPlacement},
		{"a4", "A4: repurposing disruption vs fast reroute", experiment.AblationRepurpose},
		{"a5", "A5: FEC for state transfer", experiment.AblationFEC},
		{"a6", "A6: pinning normal flows", experiment.AblationPinning},
		{"a7", "A7: stability under pulsing attacks", experiment.AblationStability},
	}
}

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	csv := flag.Bool("csv", false, "also print CSV blocks")
	flag.Parse()

	entries := registry()
	if *list {
		for _, e := range entries {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	ran := 0
	for _, e := range entries {
		if *runID != "" && !strings.EqualFold(*runID, e.id) {
			continue
		}
		ran++
		res := e.run()
		fmt.Println(res.String())
		if *csv && res.Table != nil {
			fmt.Println(res.Table.CSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ffbench: unknown experiment %q (try -list)\n", *runID)
		os.Exit(2)
	}
}
