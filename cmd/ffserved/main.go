// Command ffserved is the simulation-as-a-service daemon: a long-running
// HTTP/JSON front door over the experiment registry and the inline
// scenario builder, serving many tenants from one warm process instead of
// cold-starting ffbench per request. Jobs run concurrently on a bounded
// worker pool with per-job panic isolation, timeouts, and cancel; repeated
// scenario shapes reuse pooled warm topologies; /metrics exposes
// Prometheus-style series. OPERATIONS.md is the operator's manual: every
// endpoint, flag, signal, and metric.
//
// Usage:
//
//	ffserved                     # listen on :8080
//	ffserved -addr 127.0.0.1:9090
//	ffserved -workers 16 -queue 256
//	ffserved -timeout 5m         # per-job wall-clock ceiling
//	ffserved -shards 4           # sharded engine for registry experiments
//	ffserved -pool 64            # warm-topology pool entries
//	ffserved -drain-grace 60s    # shutdown grace on SIGTERM/SIGINT
//
// SIGTERM/SIGINT stop admission, finish (or, past the grace, cancel)
// in-flight jobs, and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastflex/internal/experiment"
	"fastflex/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 8, "concurrent job slots")
	queue := flag.Int("queue", 64, "queued-job bound (beyond it, 429)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job wall-clock ceiling")
	shards := flag.Int("shards", 0, "engine shard count for registry experiments (0 = serial)")
	pool := flag.Int("pool", 32, "warm-topology pool entries")
	maxJobs := flag.Int("max-jobs", 1024, "retained finished-job records")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "shutdown grace for in-flight jobs")
	flag.Parse()

	// Registry fig3x reads this global at run time, exactly as ffbench
	// does; it is set once here, before any job can run.
	experiment.DefaultShards = *shards

	mgr := serve.NewManager(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		PoolSize:       *pool,
		MaxJobs:        *maxJobs,
		Shards:         *shards,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ffserved: listening on %s (workers=%d queue=%d timeout=%v shards=%d)",
		*addr, *workers, *queue, *timeout, *shards)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "ffserved: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("ffserved: signal received, draining (grace %v)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if n, err := mgr.Drain(drainCtx); err != nil {
		log.Printf("ffserved: drain grace expired, canceled %d job(s)", n)
	} else {
		log.Printf("ffserved: drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ffserved: http shutdown: %v", err)
	}
	mgr.Close(time.Second)
	log.Printf("ffserved: bye")
}
