// Command fftopo inspects the pieces of a FastFlex deployment without
// running traffic: the topology, the analyzer's dataflow decomposition, the
// merged graph, and the scheduler's placement.
//
// Usage:
//
//	fftopo -topo figure2          # topology + placement report
//	fftopo -topo fattree -k 4
//	fftopo -modules               # analyzer module table only
package main

import (
	"flag"
	"fmt"
	"os"

	"fastflex/internal/core"
	"fastflex/internal/dataplane"
	"fastflex/internal/experiment"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

func main() {
	topoName := flag.String("topo", "figure2", "topology: figure2 | fattree | linear | ring")
	k := flag.Int("k", 4, "fat-tree arity / linear & ring size")
	modules := flag.Bool("modules", false, "print only the analyzer module table")
	flag.Parse()

	if *modules {
		fmt.Println(experiment.Table1Analyzer().String())
		return
	}

	var g *topo.Graph
	var protected []packet.Addr
	switch *topoName {
	case "figure2":
		f := topo.NewFigure2()
		f.AttachUsers(4)
		for _, s := range f.AttachServers(2) {
			protected = append(protected, packet.HostAddr(int(s)))
		}
		g = f.G
	case "fattree":
		ft := topo.NewFatTree(*k)
		for i, e := range ft.Edges {
			h := ft.G.AttachHost(e, fmt.Sprintf("h%d", i), topo.DefaultHostBPS, topo.DefaultHostDelay)
			if i == 0 {
				protected = append(protected, packet.HostAddr(int(h)))
			}
		}
		g = ft.G
	case "linear":
		g = topo.NewLinear(*k)
		protected = append(protected, packet.HostAddr(int(
			g.AttachHost(topo.NodeID(*k-1), "victim", topo.DefaultHostBPS, topo.DefaultHostDelay))))
		g.AttachHost(0, "src", topo.DefaultHostBPS, topo.DefaultHostDelay)
	case "ring":
		g = topo.NewRing(*k)
		protected = append(protected, packet.HostAddr(int(
			g.AttachHost(topo.NodeID(*k/2), "victim", topo.DefaultHostBPS, topo.DefaultHostDelay))))
		g.AttachHost(0, "src", topo.DefaultHostBPS, topo.DefaultHostDelay)
	default:
		fmt.Fprintf(os.Stderr, "fftopo: unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	fmt.Printf("topology %s: %d switches, %d hosts, %d directed links, diameter %d\n",
		*topoName, len(g.Switches()), len(g.Hosts()), len(g.Links), g.Diameter())
	for _, l := range g.Links {
		if l.ID%2 == 0 && g.Nodes[l.From].Kind == topo.Switch && g.Nodes[l.To].Kind == topo.Switch {
			fmt.Printf("  %s — %s  %.0f Mbps, %.1f ms\n",
				g.Nodes[l.From].Name, g.Nodes[l.To].Name, l.BitsPerSec/1e6, float64(l.DelayNS)/1e6)
		}
	}

	cfg := core.Config{Protected: protected}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(g, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fftopo: deploying fabric: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(fab.Report())
	fmt.Println()
	fmt.Println("per-switch pipelines:")
	for _, sw := range g.Switches() {
		s := fab.Net.Switch(sw)
		fmt.Printf("  %s (used %v of %v):\n", g.Nodes[sw].Name, s.Used(), dataplane.TofinoLike())
		for _, prog := range s.Programs() {
			fmt.Printf("    [%3d] %-18s %v\n", prog.Priority, prog.PPM.Name(), prog.PPM.Resources())
		}
	}
}
