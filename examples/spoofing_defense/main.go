// Spoofing defense: the extended booster catalog in action on an
// asymmetric topology. A hop-count filter (NetHCF-style [51]) at the
// victim's edge learns how far away legitimate sources live and drops a
// spoofed flood whose TTLs betray the wrong distance; a header normalizer
// (NetWarden-flavored [78]) at a compromised host's own edge flattens the
// TTL covert channel it uses for exfiltration — two more of the in-network
// defenses the paper's §1 envisions running on this architecture.
package main

import (
	"fmt"
	"time"

	"fastflex/internal/booster"
	"fastflex/internal/control"
	"fastflex/internal/dataplane"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

func main() {
	// A chain makes distances meaningful: s0 — s1 — s2 — s3.
	// userFar@s0 (3 hops from the victim edge), compromised@s1 (2 hops),
	// spoofer@s2 (1 hop), victim@s3.
	g := topo.NewLinear(4)
	userFar := g.AttachHost(0, "userFar", topo.DefaultHostBPS, topo.DefaultHostDelay)
	compromised := g.AttachHost(1, "compromised", topo.DefaultHostBPS, topo.DefaultHostDelay)
	spoofer := g.AttachHost(2, "spoofer", topo.DefaultHostBPS, topo.DefaultHostDelay)
	victimHost := g.AttachHost(3, "victim", topo.DefaultHostBPS, topo.DefaultHostDelay)
	victim := packet.HostAddr(int(victimHost))

	n := netsim.New(g, netsim.DefaultConfig())
	control.NewTEController(n, control.Config{}).InstallStatic()

	// Hop-count filter at the victim's edge switch.
	hcf := booster.NewHopCountFilter(3, booster.HCFConfig{LearnFor: 3 * time.Second})
	must(n.Switch(3).Install(dataplane.Program{PPM: hcf, Priority: dataplane.PriDetect, Modes: 1}))

	// Header normalizer at the compromised host's own edge, so covert
	// TTLs are flattened before anything downstream can read them.
	norm := booster.NewNormalizer(1, booster.NormalizeConfig{
		Protected: []packet.Addr{packet.HostAddr(int(compromised))},
	})
	must(n.Switch(1).Install(dataplane.Program{PPM: norm, Priority: dataplane.PriDetect - 10, Modes: 1}))

	// Legitimate traffic (learning window and beyond).
	netsim.NewCBRSource(n, userFar, victim, 3000, 80, packet.ProtoTCP, 800, 2e6).Start()
	netsim.NewCBRSource(n, compromised, victim, 3001, 80, packet.ProtoTCP, 800, 2e6).Start()

	// From 5s: the spoofer floods the victim, forging userFar's address.
	// It is 1 hop from the victim edge; userFar is 3 — the TTLs lie.
	n.Eng.Schedule(5*time.Second, func() {
		var seq uint32
		var emit func()
		emit = func() {
			seq++
			n.SendFromHost(spoofer, &packet.Packet{
				Src: packet.HostAddr(int(userFar)), // forged
				Dst: victim, TTL: 64, Proto: packet.ProtoUDP,
				SrcPort: uint16(9000 + seq%16), DstPort: 53,
				PayloadLen: 1200, Seq: seq,
			})
			if n.Now() < 15*time.Second {
				n.Eng.After(500*time.Microsecond, emit)
			}
		}
		emit()
	})

	// From 5s: the compromised host leaks a secret by modulating TTLs.
	n.Eng.Schedule(5*time.Second, func() {
		secret := []uint8{7, 1, 4, 2, 6}
		var i uint32
		var leak func()
		leak = func() {
			n.SendFromHost(compromised, &packet.Packet{
				Src: packet.HostAddr(int(compromised)), Dst: victim,
				TTL: 64 - secret[i%5], Proto: packet.ProtoTCP,
				SrcPort: 2222, DstPort: 443, PayloadLen: 64, Seq: i,
			})
			i++
			if n.Now() < 15*time.Second {
				n.Eng.After(10*time.Millisecond, leak)
			}
		}
		leak()
	})

	// What the victim actually observes.
	spoofedArrived := 0
	seenTTL := map[uint8]bool{}
	n.Host(victimHost).OnSink(func(p *packet.Packet) {
		if p.Proto == packet.ProtoUDP && p.DstPort == 53 {
			spoofedArrived++
		}
		if p.Proto == packet.ProtoTCP && p.SrcPort == 2222 {
			seenTTL[p.TTL] = true
		}
	})

	n.Run(16 * time.Second)

	fmt.Printf("hop-count filter @victim edge: learned %d sources, %d spoofed packets detected, %d dropped, %d leaked through\n",
		hcf.Learned, hcf.Mismatches, hcf.Dropped, spoofedArrived)
	fmt.Printf("normalizer @compromised edge: %d covert TTLs rewritten; victim observed %d distinct TTL value(s) on the covert flow\n",
		norm.Rewritten, len(seenTTL))
	if spoofedArrived == 0 && len(seenTTL) == 1 {
		fmt.Println("both channels closed: spoofed flood dead at the victim edge, covert TTL channel flattened at the source.")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
