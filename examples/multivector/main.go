// Multi-vector: a link-flooding attack and a volumetric DDoS launched
// simultaneously in different parts of the network. FastFlex activates
// different, co-existing modes per region — the multimode property of §2
// and Figure 2: LFA mitigation (reroute + mitigate) where the Crossfire
// hits, ModeDDoS where the flood hits, both at once.
package main

import (
	"fmt"
	"time"

	"fastflex/internal/attack"
	"fastflex/internal/booster"
	"fastflex/internal/core"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

func main() {
	f := topo.NewFigure2()
	users := f.AttachUsers(4)
	lfaBots := f.AttachBots(40)
	ddosBots := f.AttachBots(6)
	servers := f.AttachServers(8)
	var protected []packet.Addr
	for _, s := range servers {
		protected = append(protected, packet.HostAddr(int(s)))
	}

	cfg := core.Config{
		Protected:          protected,
		EnableHeavyHitter:  true,
		DisableObfuscation: true, // stage budget for the HashPipe
		HH:                 booster.HHConfig{Epoch: 500 * time.Millisecond, ThresholdPkts: 1000},
	}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(f.G, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(fab.Report())

	for i, u := range users {
		src := netsim.NewAIMDSource(fab.Net, u, protected[i%len(protected)], uint16(6000+i), 80, 1200)
		src.SetMaxRate(5e6)
		src.Start()
	}

	// Vector 1: Crossfire LFA from t = 5s.
	lfa := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: lfaBots, Servers: protected,
		BotRateBps: 1.5e6, FlowsPerBot: 2, Start: 5 * time.Second,
	})
	lfa.Launch()
	// Vector 2: volumetric flood at a different server from t = 8s.
	vol := attack.NewVolumetric(fab.Net, ddosBots, protected[7], 30e6)
	fab.Net.Eng.Schedule(8*time.Second, vol.Start)

	report := func(at time.Duration) {
		fab.Run(at)
		m := fab.Net.Switch(f.CoreA).Modes()
		fmt.Printf("t=%-4v coreA modes: reroute=%v mitigate=%v ddos=%v\n",
			at, m.Has(booster.ModeReroute), m.Has(booster.ModeMitigate), m.Has(booster.ModeDDoS))
	}
	for _, at := range []time.Duration{4 * time.Second, 7 * time.Second, 12 * time.Second, 20 * time.Second} {
		report(at)
	}

	m := fab.Net.Switch(f.CoreA).Modes()
	if m.Has(booster.ModeMitigate) && m.Has(booster.ModeDDoS) {
		fmt.Println("\nboth defense modes are active simultaneously: the mode SET abstraction")
		fmt.Println("lets mixed-vector attacks trigger co-existing defenses (paper §2).")
	}
	var dropped uint64
	for _, d := range fab.Droppers {
		dropped += d.DroppedHigh
	}
	fmt.Printf("total highly-suspicious packets dropped across both vectors: %d\n", dropped)
}
