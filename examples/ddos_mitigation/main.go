// DDoS mitigation: a volumetric UDP flood against a server, detected by the
// HashPipe heavy-hitter booster and killed by the dropper via the ModeDDoS
// defense mode — a different booster set than the LFA case study, running
// on the same multimode architecture.
package main

import (
	"fmt"
	"time"

	"fastflex/internal/attack"
	"fastflex/internal/booster"
	"fastflex/internal/core"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

func main() {
	f := topo.NewFigure2()
	users := f.AttachUsers(4)
	bots := f.AttachBots(8)
	servers := f.AttachServers(2)
	var protected []packet.Addr
	for _, s := range servers {
		protected = append(protected, packet.HostAddr(int(s)))
	}

	cfg := core.Config{
		Protected:         protected,
		EnableHeavyHitter: true,
		// The HashPipe needs stages; give them up from obfuscation,
		// which this scenario doesn't use.
		DisableObfuscation: true,
		HH:                 booster.HHConfig{Epoch: 500 * time.Millisecond, ThresholdPkts: 1000},
	}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(f.G, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(fab.Report())

	var srcs []*netsim.AIMDSource
	for i, u := range users {
		src := netsim.NewAIMDSource(fab.Net, u, protected[i%2], uint16(6000+i), 80, 1200)
		src.SetMaxRate(5e6)
		src.Start()
		srcs = append(srcs, src)
	}

	// 8 bots × 30 Mbps of UDP at one server from t = 5s.
	vol := attack.NewVolumetric(fab.Net, bots, protected[0], 30e6)
	fab.Net.Eng.Schedule(5*time.Second, vol.Start)
	fab.Net.Eng.Schedule(20*time.Second, vol.Stop)

	report := func(at time.Duration) {
		fab.Run(at)
		flagged := false
		var banned uint64
		for _, hh := range fab.HeavyHit {
			if hh.Active() {
				flagged = true
			}
			banned += hh.Flagged
		}
		var dropped uint64
		for _, d := range fab.Droppers {
			dropped += d.DroppedHigh
		}
		var good uint64
		for _, s := range srcs {
			good += s.AckedBytes()
		}
		fmt.Printf("t=%-4v volumetric=%-5v ddos-mode@coreA=%-5v flows banned=%-3d dropped=%-7d user goodput=%.1f MB\n",
			at, flagged, fab.ModeActiveAt(f.CoreA, booster.ModeDDoS), banned, dropped, float64(good)/1e6)
	}
	for _, at := range []time.Duration{4 * time.Second, 7 * time.Second, 12 * time.Second,
		20 * time.Second, 30 * time.Second} {
		report(at)
	}
	fmt.Println("\nheavy hitters are tagged in the data plane and dropped at the first switch")
	fmt.Println("that sees them; the mode clears automatically once the flood stops.")
}
