// LFA defense: the paper's §4 case study end-to-end. Runs the rolling
// Crossfire attack against FastFlex and against the 30-second SDN baseline,
// printing both normalized-throughput series so the Figure-3 contrast is
// visible in the terminal.
package main

import (
	"flag"
	"fmt"
	"time"

	"fastflex/internal/experiment"
	"fastflex/internal/metrics"
)

func main() {
	duration := flag.Duration("duration", 90*time.Second, "simulated duration per arm")
	flag.Parse()

	fmt.Println("Rolling link-flooding attack: FastFlex vs centralized-TE baseline")
	fmt.Println("(normalized user throughput; 1.0 = stable throughput without attack)")
	fmt.Println()

	for _, d := range []experiment.Defense{experiment.DefenseBaseline, experiment.DefenseFastFlex} {
		res := experiment.Figure3(experiment.Figure3Config{Defense: d, Duration: *duration})
		fmt.Printf("--- %v ---\n", d)
		for _, n := range res.Notes {
			fmt.Println(n)
		}
		fmt.Print(metrics.AsciiPlot(res.Throughput, 72, 8))
		fmt.Println()
	}
	fmt.Println("FastFlex detects the attack in the data plane, activates congestion-aware")
	fmt.Println("rerouting for suspicious flows at RTT timescale, pins normal flows to their")
	fmt.Println("TE paths, obfuscates the attacker's traceroutes, and drops the most")
	fmt.Println("suspicious flows — so the rolling attacker never finds a new target.")
}
