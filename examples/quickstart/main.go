// Quickstart: deploy a FastFlex fabric on the paper's Figure-2 topology,
// run normal traffic plus a link-flooding attack, and watch the multimode
// data plane detect and mitigate it — all in a few seconds of wall time.
package main

import (
	"fmt"
	"time"

	"fastflex/internal/attack"
	"fastflex/internal/core"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

func main() {
	// 1. Topology: 9 switches (Figure 2), users and bots behind the four
	// ingresses, public servers on the victim edge.
	f := topo.NewFigure2()
	users := f.AttachUsers(4)
	bots := f.AttachBots(40)
	servers := f.AttachServers(8)
	var protected []packet.Addr
	for _, s := range servers {
		protected = append(protected, packet.HostAddr(int(s)))
	}

	// 2. Deploy the fabric: analyze boosters → merge shared PPMs →
	// schedule onto switches → install multimode pipelines.
	cfg := core.Config{Protected: protected}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(f.G, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(fab.Report())

	// 3. Normal user traffic: application-limited TCP at 5 Mbps each.
	var srcs []*netsim.AIMDSource
	for i, u := range users {
		src := netsim.NewAIMDSource(fab.Net, u, protected[i%len(protected)], uint16(6000+i), 80, 1200)
		src.SetMaxRate(5e6)
		src.Start()
		srcs = append(srcs, src)
	}

	// 4. The Crossfire attack starts at t = 5s.
	atk := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: bots, Servers: protected,
		BotRateBps: 1.5e6, FlowsPerBot: 2,
		Start: 5 * time.Second,
	})
	atk.Launch()

	// 5. Run and report.
	checkpoint := func(at time.Duration) {
		fab.Run(at)
		var good uint64
		for _, s := range srcs {
			good += s.AckedBytes()
		}
		fmt.Printf("t=%-4v detected=%-5v modes@coreA=%v user goodput so far=%.1f MB\n",
			at, fab.AttackDetected(), fab.Net.Switch(f.CoreA).Modes(), float64(good)/1e6)
	}
	for _, at := range []time.Duration{4 * time.Second, 8 * time.Second, 12 * time.Second, 20 * time.Second} {
		checkpoint(at)
	}

	var rerouted, dropped uint64
	for _, rr := range fab.Reroutes {
		rerouted += rr.Rerouted
	}
	for _, d := range fab.Droppers {
		dropped += d.DroppedHigh
	}
	fmt.Printf("\nmitigation summary: %d suspicious packets rerouted, %d dropped, %d mode events\n",
		rerouted, dropped, len(fab.ModeEvents()))
}
