// Benchmarks regenerating every table and figure in the paper's evaluation
// plus the DESIGN.md ablations. Each benchmark runs the corresponding
// experiment and reports its headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The underlying experiment code is in
// internal/experiment; cmd/ffbench prints the full tables.
package fastflex_test

import (
	"testing"
	"time"

	"fastflex/internal/eventsim"
	"fastflex/internal/experiment"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

// benchDuration keeps the per-iteration simulations tractable; the shapes
// are stable from ~60 simulated seconds on (cmd/ffbench runs the full 120s).
const benchDuration = 60 * time.Second

func fig3(b *testing.B, d experiment.Defense, mutate func(*experiment.Figure3Config)) {
	b.ReportAllocs()
	var last *experiment.Figure3Result
	for i := 0; i < b.N; i++ {
		cfg := experiment.Figure3Config{Defense: d, Duration: benchDuration}
		if mutate != nil {
			mutate(&cfg)
		}
		last = experiment.Figure3(cfg)
	}
	// Custom metrics are per-benchmark values, not per-iteration samples:
	// report once after the loop (same-seed runs are identical anyway, and
	// calling ReportMetric inside the loop would just overwrite b.N times
	// while bloating the timed region).
	b.ReportMetric(last.AttackMean, "attack-mean")
	b.ReportMetric(last.FractionDegraded, "degraded-frac")
	b.ReportMetric(float64(last.Rolls), "rolls")
}

// BenchmarkFigure3FastFlex regenerates the FastFlex arm of Figure 3.
func BenchmarkFigure3FastFlex(b *testing.B) { fig3(b, experiment.DefenseFastFlex, nil) }

// BenchmarkFigure3Baseline regenerates the baseline (30s centralized TE)
// arm of Figure 3.
func BenchmarkFigure3Baseline(b *testing.B) { fig3(b, experiment.DefenseBaseline, nil) }

// BenchmarkFigure3Undefended regenerates the undefended floor.
func BenchmarkFigure3Undefended(b *testing.B) { fig3(b, experiment.DefenseNone, nil) }

// BenchmarkTable1Analyzer regenerates the Figure-1(a) module resource table.
func BenchmarkTable1Analyzer(b *testing.B) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		r := experiment.Table1Analyzer()
		rows = len(r.Table.Rows)
	}
	b.ReportMetric(float64(rows), "modules")
}

// BenchmarkFigure1Merge regenerates the Figure-1(b) merged dataflow graph.
func BenchmarkFigure1Merge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1Merge()
	}
}

// BenchmarkFigure1Place regenerates the Figure-1(c) placement.
func BenchmarkFigure1Place(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1Place()
	}
}

// BenchmarkFigure2Modes regenerates the Figure-2 multimode progression.
func BenchmarkFigure2Modes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure2Modes()
	}
}

// BenchmarkFigure1dScale regenerates the Figure-1(d) dynamic-scaling step.
func BenchmarkFigure1dScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1dScale()
	}
}

// BenchmarkAblationModeLatency regenerates ablation A1.
func BenchmarkAblationModeLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationModeLatency()
	}
}

// BenchmarkAblationSharing regenerates ablation A2.
func BenchmarkAblationSharing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationSharing()
	}
}

// BenchmarkAblationPlacement regenerates ablation A3.
func BenchmarkAblationPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationPlacement()
	}
}

// BenchmarkAblationRepurpose regenerates ablation A4.
func BenchmarkAblationRepurpose(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationRepurpose()
	}
}

// BenchmarkAblationFEC regenerates ablation A5.
func BenchmarkAblationFEC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationFEC(42)
	}
}

// BenchmarkAblationPinning regenerates ablation A6 (pin-normal-flows vs
// reroute-all, the §4.2 step-3 design choice).
func BenchmarkAblationPinning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationPinning(1)
	}
}

// BenchmarkAblationStability regenerates ablation A7 (pulsing attacker vs
// hysteresis).
func BenchmarkAblationStability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationStability(1)
	}
}

// BenchmarkEventsimStep measures the simulator's innermost loop — schedule
// one event, pop and fire it — which the concrete-typed heap and the Event
// free list keep allocation-free (0 allocs/op is asserted by
// eventsim's TestScheduleSteadyStateZeroAlloc).
func BenchmarkEventsimStep(b *testing.B) {
	eng := eventsim.New(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		eng.After(time.Duration(i)*time.Microsecond, fn)
	}
	for eng.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Microsecond, fn)
		eng.Step()
	}
}

// BenchmarkLinkEnqueue measures one full packet lifetime on the netsim hot
// path: pooled allocation, host send, link FIFO, transmission, pipeline
// traversal at two switches, delivery, recycling. Zero steady-state
// allocations are asserted by netsim's TestForwardSteadyStateZeroAlloc.
func BenchmarkLinkEnqueue(b *testing.B) {
	g := topo.NewFigure2()
	users := g.AttachUsers(1)
	servers := g.AttachServers(1)
	n := netsim.New(g.G, netsim.DefaultConfig())
	for _, sw := range g.G.Switches() {
		r := n.Router(sw)
		for _, h := range g.G.Hosts() {
			if p, ok := g.G.ShortestPath(sw, h, nil); ok {
				r.SetRoute(packet.HostAddr(int(h)), p.Links[0])
			}
		}
	}
	dst := packet.HostAddr(int(servers[0]))
	send := func() {
		p := n.NewPacket()
		p.Src, p.Dst, p.TTL = packet.HostAddr(int(users[0])), dst, 64
		p.Proto, p.SrcPort, p.DstPort = packet.ProtoUDP, 1, 2
		p.PayloadLen = 100
		n.SendFromHost(users[0], p)
	}
	// Warm the pools and rings before timing.
	for i := 0; i < 64; i++ {
		send()
		n.Run(n.Now() + 10*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
		n.Run(n.Now() + 10*time.Millisecond)
	}
}
