// Benchmarks regenerating every table and figure in the paper's evaluation
// plus the DESIGN.md ablations. Each benchmark runs the corresponding
// experiment and reports its headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The underlying experiment code is in
// internal/experiment; cmd/ffbench prints the full tables.
package fastflex_test

import (
	"testing"
	"time"

	"fastflex/internal/experiment"
)

// benchDuration keeps the per-iteration simulations tractable; the shapes
// are stable from ~60 simulated seconds on (cmd/ffbench runs the full 120s).
const benchDuration = 60 * time.Second

func fig3(b *testing.B, d experiment.Defense, mutate func(*experiment.Figure3Config)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiment.Figure3Config{Defense: d, Duration: benchDuration}
		if mutate != nil {
			mutate(&cfg)
		}
		r := experiment.Figure3(cfg)
		b.ReportMetric(r.AttackMean, "attack-mean")
		b.ReportMetric(r.FractionDegraded, "degraded-frac")
		b.ReportMetric(float64(r.Rolls), "rolls")
	}
}

// BenchmarkFigure3FastFlex regenerates the FastFlex arm of Figure 3.
func BenchmarkFigure3FastFlex(b *testing.B) { fig3(b, experiment.DefenseFastFlex, nil) }

// BenchmarkFigure3Baseline regenerates the baseline (30s centralized TE)
// arm of Figure 3.
func BenchmarkFigure3Baseline(b *testing.B) { fig3(b, experiment.DefenseBaseline, nil) }

// BenchmarkFigure3Undefended regenerates the undefended floor.
func BenchmarkFigure3Undefended(b *testing.B) { fig3(b, experiment.DefenseNone, nil) }

// BenchmarkTable1Analyzer regenerates the Figure-1(a) module resource table.
func BenchmarkTable1Analyzer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiment.Table1Analyzer()
		b.ReportMetric(float64(len(r.Table.Rows)), "modules")
	}
}

// BenchmarkFigure1Merge regenerates the Figure-1(b) merged dataflow graph.
func BenchmarkFigure1Merge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1Merge()
	}
}

// BenchmarkFigure1Place regenerates the Figure-1(c) placement.
func BenchmarkFigure1Place(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1Place()
	}
}

// BenchmarkFigure2Modes regenerates the Figure-2 multimode progression.
func BenchmarkFigure2Modes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure2Modes()
	}
}

// BenchmarkFigure1dScale regenerates the Figure-1(d) dynamic-scaling step.
func BenchmarkFigure1dScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Figure1dScale()
	}
}

// BenchmarkAblationModeLatency regenerates ablation A1.
func BenchmarkAblationModeLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationModeLatency()
	}
}

// BenchmarkAblationSharing regenerates ablation A2.
func BenchmarkAblationSharing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationSharing()
	}
}

// BenchmarkAblationPlacement regenerates ablation A3.
func BenchmarkAblationPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationPlacement()
	}
}

// BenchmarkAblationRepurpose regenerates ablation A4.
func BenchmarkAblationRepurpose(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationRepurpose()
	}
}

// BenchmarkAblationFEC regenerates ablation A5.
func BenchmarkAblationFEC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationFEC()
	}
}

// BenchmarkAblationPinning regenerates ablation A6 (pin-normal-flows vs
// reroute-all, the §4.2 step-3 design choice).
func BenchmarkAblationPinning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationPinning()
	}
}

// BenchmarkAblationStability regenerates ablation A7 (pulsing attacker vs
// hysteresis).
func BenchmarkAblationStability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.AblationStability()
	}
}
