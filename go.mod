module fastflex

go 1.22
