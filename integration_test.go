// End-to-end integration tests exercising the public workflow the README
// documents: build a topology, deploy a fabric, run attacks, observe the
// multimode data plane respond. These are the same paths the examples use.
package fastflex_test

import (
	"testing"
	"time"

	"fastflex/internal/attack"
	"fastflex/internal/booster"
	"fastflex/internal/core"
	"fastflex/internal/netsim"
	"fastflex/internal/packet"
	"fastflex/internal/topo"
)

// TestQuickstartFlow mirrors examples/quickstart as an assertion: deploy,
// attack, detect, mitigate — and user goodput keeps flowing.
func TestQuickstartFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	f := topo.NewFigure2()
	users := f.AttachUsers(4)
	bots := f.AttachBots(40)
	servers := f.AttachServers(8)
	var protected []packet.Addr
	for _, s := range servers {
		protected = append(protected, packet.HostAddr(int(s)))
	}
	cfg := core.Config{Protected: protected}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(f.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []*netsim.AIMDSource
	for i, u := range users {
		src := netsim.NewAIMDSource(fab.Net, u, protected[i%len(protected)], uint16(6000+i), 80, 1200)
		src.SetMaxRate(5e6)
		src.Start()
		srcs = append(srcs, src)
	}
	atk := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: bots, Servers: protected, BotRateBps: 1.5e6, FlowsPerBot: 2,
		Start: 5 * time.Second,
	})
	atk.Launch()

	fab.Run(4 * time.Second)
	if fab.AttackDetected() {
		t.Fatal("false positive before the attack")
	}
	// Let detection + mitigation settle, then measure the steady state.
	fab.Run(10 * time.Second)
	if !fab.AttackDetected() {
		t.Fatal("attack not detected")
	}
	if !fab.ModeActiveAt(f.CoreA, booster.ModeMitigate) {
		t.Fatal("mitigation mode not active network-wide")
	}
	pre := srcs[0].AckedBytes()
	fab.Run(25 * time.Second)
	// With mitigation in steady state the user keeps nearly its full
	// 5 Mbps despite the ongoing attack.
	during := srcs[0].AckedBytes() - pre
	rate := float64(during) * 8 / 15
	if rate < 4e6 {
		t.Fatalf("user rate under mitigated attack = %.1f Mbps, want ≥4", rate/1e6)
	}
	// Mitigation evidence across the fabric.
	var rerouted, dropped, fabricated uint64
	for _, rr := range fab.Reroutes {
		rerouted += rr.Rerouted
	}
	for _, d := range fab.Droppers {
		dropped += d.DroppedHigh
	}
	for _, o := range fab.Obfuscators {
		fabricated += o.Fabricated
	}
	if rerouted == 0 || dropped == 0 {
		t.Fatalf("mitigation not engaged: rerouted=%d dropped=%d", rerouted, dropped)
	}
}

// TestMultiVectorFlow mirrors examples/multivector: LFA and volumetric
// attacks at once, co-existing modes.
func TestMultiVectorFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	f := topo.NewFigure2()
	users := f.AttachUsers(2)
	lfaBots := f.AttachBots(40)
	ddosBots := f.AttachBots(6)
	servers := f.AttachServers(8)
	var protected []packet.Addr
	for _, s := range servers {
		protected = append(protected, packet.HostAddr(int(s)))
	}
	cfg := core.Config{
		Protected:          protected,
		EnableHeavyHitter:  true,
		DisableObfuscation: true,
		HH:                 booster.HHConfig{Epoch: 500 * time.Millisecond, ThresholdPkts: 1000},
	}
	cfg.Net = netsim.DefaultConfig()
	fab, err := core.New(f.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		src := netsim.NewAIMDSource(fab.Net, u, protected[i%len(protected)], uint16(6000+i), 80, 1200)
		src.SetMaxRate(5e6)
		src.Start()
	}
	lfa := attack.NewCrossfire(fab.Net, attack.CrossfireConfig{
		Bots: lfaBots, Servers: protected, BotRateBps: 1.5e6, FlowsPerBot: 2,
		Start: 3 * time.Second,
	})
	lfa.Launch()
	vol := attack.NewVolumetric(fab.Net, ddosBots, protected[7], 30e6)
	fab.Net.Eng.Schedule(6*time.Second, vol.Start)

	fab.Run(15 * time.Second)
	m := fab.Net.Switch(f.CoreA).Modes()
	if !m.Has(booster.ModeMitigate) || !m.Has(booster.ModeDDoS) {
		t.Fatalf("modes not co-existing: mitigate=%v ddos=%v",
			m.Has(booster.ModeMitigate), m.Has(booster.ModeDDoS))
	}
}
